// Package metrics provides the statistical plumbing the experiments use:
// empirical CDFs, log-bucketed histograms, fixed-width windowed time
// series, and the paper's headline metric — the seek amplification
// factor (SAF).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// SAF computes a seek amplification factor: seeks under a log-structured
// variant divided by seeks under the untranslated baseline. A baseline of
// zero with a non-zero numerator yields +Inf; 0/0 is defined as 1 (no
// seeks anywhere — nothing was amplified).
func SAF(variantSeeks, baselineSeeks int64) float64 {
	if baselineSeeks == 0 {
		if variantSeeks == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(variantSeeks) / float64(baselineSeeks)
}

// Resilience tallies the fault-injection and recovery behaviour of one
// simulation run: how much misbehaviour was injected, how much of it the
// retry/degradation machinery absorbed, and what leaked through. All
// counters are plain totals so runs shard and Add cleanly.
type Resilience struct {
	// FaultsInjected is every fault the injector produced (transient
	// reads and writes, media errors, poisoned buffer serves).
	FaultsInjected int64
	// TransientFaults counts retryable read/write faults injected.
	TransientFaults int64
	// MediaFaults counts attempts rejected by a persistent media range.
	MediaFaults int64
	// WriteFaults counts transient write faults injected.
	WriteFaults int64
	// Retries counts re-attempts spent on transient faults.
	Retries int64
	// Recoveries counts faulted accesses that eventually succeeded.
	Recoveries int64
	// Unrecovered counts accesses abandoned after exhausting retries or
	// hitting a media error.
	Unrecovered int64
	// AbortedRelocations counts defrag write-backs abandoned because the
	// rewrite faulted; the extent map is left untouched by each.
	AbortedRelocations int64
	// PoisonedEvictions counts cache entries evicted because their data
	// was poisoned; each forces a fallback read from the medium.
	PoisonedEvictions int64
	// PrefetchFallbacks counts drive-buffer hits abandoned as poisoned;
	// each falls back to the direct medium read.
	PrefetchFallbacks int64
}

// Any reports whether any fault activity was recorded.
func (r Resilience) Any() bool { return r != (Resilience{}) }

// Add accumulates other into r.
func (r *Resilience) Add(other Resilience) {
	r.FaultsInjected += other.FaultsInjected
	r.TransientFaults += other.TransientFaults
	r.MediaFaults += other.MediaFaults
	r.WriteFaults += other.WriteFaults
	r.Retries += other.Retries
	r.Recoveries += other.Recoveries
	r.Unrecovered += other.Unrecovered
	r.AbortedRelocations += other.AbortedRelocations
	r.PoisonedEvictions += other.PoisonedEvictions
	r.PrefetchFallbacks += other.PrefetchFallbacks
}

// RecoveryRate is the fraction of fault-hit accesses that recovered:
// Recoveries / (Recoveries + Unrecovered). A run with no faulted
// accesses reports 1 (nothing failed to recover).
func (r Resilience) RecoveryRate() float64 {
	hit := r.Recoveries + r.Unrecovered
	if hit == 0 {
		return 1
	}
	return float64(r.Recoveries) / float64(hit)
}

// Durability tallies the write-ahead-journal and recovery behaviour of
// one simulation run: how much was logged and checkpointed, whether an
// (injected) crash cut the run short, and — after stl.Recover — what
// replay found on disk.
type Durability struct {
	// JournalAppends is the number of records acknowledged by the log.
	JournalAppends int64
	// AppendRetries counts re-attempts spent on transient journal-device
	// faults before an append was acknowledged or abandoned.
	AppendRetries int64
	// AppendFailures counts appends abandoned after exhausting retries.
	AppendFailures int64
	// Checkpoints is the number of checkpoints written during the run.
	Checkpoints int64
	// CheckpointAge is the journal's record count past the last
	// checkpoint when the run ended — the replay a crash would cost.
	CheckpointAge int64
	// Crashed reports that an injected crash point stopped the run.
	Crashed bool

	// Recovery-side counters, filled in after stl.Recover.
	Recovered       bool  // a recovery was performed
	RecordsReplayed int64 // complete journal records applied
	ReplayedSectors int64 // sectors those records appended
	TornTail        bool  // the journal ended in a torn/corrupt record
	FromCheckpoint  bool  // a checkpoint seeded the recovered state
}

// Any reports whether any journal activity was recorded.
func (d Durability) Any() bool { return d != (Durability{}) }

// Cleaning tallies the finite-disk banded device's persistent-cache and
// band-cleaning behaviour: how much host traffic the cache absorbed, how
// much extra mechanical work cleaning cost, and how often cleaning
// stalled the host. All counters are plain totals so runs Add cleanly.
type Cleaning struct {
	// CachedWrites counts host write pieces redirected into the
	// persistent cache instead of their home band.
	CachedWrites int64
	// CachedSectors counts sectors those redirected pieces carried.
	CachedSectors int64
	// CacheReads counts host read pieces served from the cache region.
	CacheReads int64
	// CleanRuns counts cleaning passes (one pass may clean many bands).
	CleanRuns int64
	// BandsCleaned counts bands read-modify-written back in place.
	BandsCleaned int64
	// CleanReadSectors counts sectors read during cleaning (live band
	// data plus cached pieces merged back).
	CleanReadSectors int64
	// CleanWriteSectors counts sectors written back during cleaning.
	CleanWriteSectors int64
	// Stalls counts cleaning passes forced synchronously under a host
	// op because the cache hit its high watermark — the host waited.
	Stalls int64
	// StallSectors counts the sectors moved by those stalled passes —
	// a proxy for how long the host waited.
	StallSectors int64
	// DirtyBands is the number of bands still holding cached data when
	// the run ended (a gauge, not a total; Add keeps the larger).
	DirtyBands int64
	// HostWriteSectors counts sectors the host asked to write — the
	// denominator of WriteAmp.
	HostWriteSectors int64
	// BandCrossings counts band boundaries host accesses swept across —
	// the head movement the banded geometry makes visible.
	BandCrossings int64
}

// Any reports whether any banded-device activity was recorded.
func (c Cleaning) Any() bool { return c != (Cleaning{}) }

// Add accumulates other into c. DirtyBands, a gauge, keeps the max.
func (c *Cleaning) Add(other Cleaning) {
	c.CachedWrites += other.CachedWrites
	c.CachedSectors += other.CachedSectors
	c.CacheReads += other.CacheReads
	c.CleanRuns += other.CleanRuns
	c.BandsCleaned += other.BandsCleaned
	c.CleanReadSectors += other.CleanReadSectors
	c.CleanWriteSectors += other.CleanWriteSectors
	c.Stalls += other.Stalls
	c.StallSectors += other.StallSectors
	if other.DirtyBands > c.DirtyBands {
		c.DirtyBands = other.DirtyBands
	}
	c.HostWriteSectors += other.HostWriteSectors
	c.BandCrossings += other.BandCrossings
}

// WriteAmp is the device-level write amplification: all sectors the
// medium wrote (host + cleaning write-back) over the sectors the host
// asked to write. A run with no host writes reports 1.
func (c Cleaning) WriteAmp() float64 {
	if c.HostWriteSectors == 0 {
		return 1
	}
	return float64(c.HostWriteSectors+c.CleanWriteSectors) / float64(c.HostWriteSectors)
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns an empty CDF.
func NewCDF() *CDF { return &CDF{} }

// Observe adds one sample.
func (c *CDF) Observe(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= v), or 0 when the CDF is empty.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (0 <= q <= 1), or 0 when empty.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	i := int(q * float64(len(c.samples)))
	if i >= len(c.samples) {
		i = len(c.samples) - 1
	}
	return c.samples[i]
}

// Point is one (X, P) sample of a rendered CDF curve.
type Point struct {
	X float64
	P float64
}

// Curve renders the CDF at n evenly spaced x positions across [lo, hi].
func (c *CDF) Curve(lo, hi float64, n int) []Point {
	if n < 2 {
		n = 2
	}
	out := make([]Point, 0, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		out = append(out, Point{X: x, P: c.At(x)})
	}
	return out
}

// Mean returns the sample mean, or 0 when empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Histogram is a signed, symmetric log2-bucketed histogram for seek
// distances: bucket 0 holds |v| in [0,1), bucket k holds |v| in
// [2^(k-1), 2^k), with separate negative-side buckets.
type Histogram struct {
	pos   []int64
	neg   []int64
	zero  int64
	total int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketOf(v int64) int {
	// v > 0; bucket = floor(log2(v)) + 1, so 1 -> bucket 1.
	b := 0
	for v > 0 {
		v >>= 1
		b++
	}
	return b
}

// Observe adds one signed sample.
func (h *Histogram) Observe(v int64) {
	h.total++
	switch {
	case v == 0:
		h.zero++
	case v > 0:
		b := bucketOf(v)
		for len(h.pos) <= b {
			h.pos = append(h.pos, 0)
		}
		h.pos[b]++
	default:
		b := bucketOf(-v)
		for len(h.neg) <= b {
			h.neg = append(h.neg, 0)
		}
		h.neg[b]++
	}
}

// Total returns the number of samples.
func (h *Histogram) Total() int64 { return h.total }

// Bucket describes one histogram bucket: samples with Lo <= |v| < Hi on
// the given sign.
type Bucket struct {
	Lo, Hi   int64
	Negative bool
	Count    int64
}

// Buckets returns the non-empty buckets in ascending value order
// (most-negative first).
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for b := len(h.neg) - 1; b >= 1; b-- {
		if h.neg[b] > 0 {
			out = append(out, Bucket{Lo: 1 << (b - 1), Hi: 1 << b, Negative: true, Count: h.neg[b]})
		}
	}
	if h.zero > 0 {
		out = append(out, Bucket{Lo: 0, Hi: 1, Count: h.zero})
	}
	for b := 1; b < len(h.pos); b++ {
		if h.pos[b] > 0 {
			out = append(out, Bucket{Lo: 1 << (b - 1), Hi: 1 << b, Count: h.pos[b]})
		}
	}
	return out
}

// CDFPoints renders the histogram as an empirical CDF sampled at the
// bucket boundaries, most-negative first. At each returned X the P value
// is exact — equal to what a full-sample CDF would report at the same X
// — because every bucket lies entirely on one side of its boundary:
// a negative bucket (-Hi, -Lo] is sampled at X = -Lo, the zero bucket at
// X = 0, and a positive bucket [Lo, Hi) at X = Hi-1 (samples are
// integers). Between points the histogram has no information; consumers
// interpolate or step.
func (h *Histogram) CDFPoints() []Point {
	return CDFFromBuckets(h.Buckets(), h.total)
}

// CDFFromBuckets computes the exact boundary-sampled CDF (see CDFPoints)
// from a bucket list as returned by Buckets — ascending value order,
// most-negative first — and the total sample count. It returns nil for
// an empty histogram.
func CDFFromBuckets(buckets []Bucket, total int64) []Point {
	if total == 0 {
		return nil
	}
	out := make([]Point, 0, len(buckets))
	var cum int64
	for _, b := range buckets {
		cum += b.Count
		var x float64
		switch {
		case b.Negative:
			x = -float64(b.Lo)
		case b.Lo == 0:
			x = 0
		default:
			x = float64(b.Hi - 1)
		}
		out = append(out, Point{X: x, P: float64(cum) / float64(total)})
	}
	return out
}

// Quantile returns the upper edge (Hi-1 for positive buckets, matching
// CDFPoints' boundary sampling) of the first bucket at which the
// cumulative count reaches q of the samples, walking buckets in
// ascending value order. q is clamped to [0, 1]; an empty histogram
// returns 0. The result over-estimates the true quantile by at most one
// log2 bucket width — the usual bucketed-quantile trade, fine for the
// load-generator latency percentiles it serves.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	need := int64(math.Ceil(q * float64(h.total)))
	if need < 1 {
		need = 1
	}
	var cum int64
	var last int64
	for _, b := range h.Buckets() {
		cum += b.Count
		switch {
		case b.Negative:
			last = -b.Lo
		case b.Lo == 0:
			last = 0
		default:
			last = b.Hi - 1
		}
		if cum >= need {
			return last
		}
	}
	return last
}

// CountWithin returns how many samples have |v| <= limit.
func (h *Histogram) CountWithin(limit int64) int64 {
	if limit < 0 {
		return 0
	}
	n := h.zero
	count := func(side []int64) {
		for b := 1; b < len(side); b++ {
			hi := int64(1) << b
			if hi-1 <= limit {
				n += side[b]
			}
		}
	}
	count(h.pos)
	count(h.neg)
	return n
}

// Series is a fixed-width windowed counter time series, used for the
// Figure 3 long-seek-over-time plots (windowed by operation number).
type Series struct {
	Width int64 // operations per window
	vals  []int64
}

// NewSeries returns a series with the given window width (minimum 1).
func NewSeries(width int64) *Series {
	if width < 1 {
		width = 1
	}
	return &Series{Width: width}
}

// Add increments the window containing operation index op by delta.
func (s *Series) Add(op int64, delta int64) {
	w := int(op / s.Width)
	for len(s.vals) <= w {
		s.vals = append(s.vals, 0)
	}
	s.vals[w] += delta
}

// Values returns a copy of the per-window totals.
func (s *Series) Values() []int64 {
	out := make([]int64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Sub returns a new series of s minus other, window-wise (used for the
// "LS minus NoLS" differential the paper plots). Both must share Width.
func (s *Series) Sub(other *Series) (*Series, error) {
	if s.Width != other.Width {
		return nil, fmt.Errorf("metrics: window widths differ (%d vs %d)", s.Width, other.Width)
	}
	n := len(s.vals)
	if len(other.vals) > n {
		n = len(other.vals)
	}
	out := NewSeries(s.Width)
	out.vals = make([]int64, n)
	for i := 0; i < n; i++ {
		var a, b int64
		if i < len(s.vals) {
			a = s.vals[i]
		}
		if i < len(other.vals) {
			b = other.vals[i]
		}
		out.vals[i] = a - b
	}
	return out, nil
}
