#!/bin/sh
# Regenerate the benchmark baseline, or compare a fresh run against it.
#
#   scripts/bench.sh            # rewrite BENCH_baseline.json
#   scripts/bench.sh compare    # run benchmarks, diff against the baseline
#
# Run from the repo root. The experiment benchmarks self-scale (see
# -benchscale in bench_test.go), so a full run takes a few minutes; the
# baseline tracks trajectory across PRs, not absolute precision.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_baseline.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench=. -benchmem -timeout 30m ./... |
	go run ./scripts/benchjson >"$tmp"

case "${1:-}" in
compare)
	go run ./scripts/benchjson -compare "$out" "$tmp"
	;;
"")
	mv "$tmp" "$out"
	trap - EXIT
	echo "wrote $out"
	;;
*)
	echo "usage: scripts/bench.sh [compare]" >&2
	exit 2
	;;
esac
