package obsv

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	hpprof "net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar registry is global and Publish panics on duplicate names,
// so the package publishes a single "smrseek" var once and redirects it
// to whichever collector was served most recently. Tests and repeated
// CLI runs in one process thus never collide.
var (
	pubOnce    sync.Once
	currentVar atomic.Pointer[Collector]
)

func publishExpvar(c *Collector) {
	currentVar.Store(c)
	pubOnce.Do(func() {
		expvar.Publish("smrseek", expvar.Func(func() interface{} {
			if c := currentVar.Load(); c != nil {
				return c.Snapshot()
			}
			return nil
		}))
	})
}

// Server serves live introspection for one collector:
//
//	/metrics      the collector's Snapshot as JSON
//	/debug/vars   standard expvar JSON (includes the "smrseek" var)
//	/debug/pprof  net/http/pprof handlers (only when enabled)
//
// The listener binds eagerly so the caller learns the bound address
// (useful with ":0") and bind errors synchronously.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and starts serving the collector. With pprof false
// the /debug/pprof endpoints are absent — profiling costs nothing until
// asked for.
func Serve(addr string, c *Collector, pprof bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(c)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if pprof {
		mux.HandleFunc("/debug/pprof/", hpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", hpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", hpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", hpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", hpprof.Trace)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:37041" for ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
