package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smrseek/internal/geom"
	"smrseek/internal/journal"
)

// sealedDir builds a journal directory with n records in segments of 2.
func sealedDir(t *testing.T, dir string, n int64) {
	t.Helper()
	log, err := journal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.SetSegmentSize(2); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := log.Append(journal.Record{
			Kind: journal.RecWrite, Lba: geom.Ext(i*8, 8), Pba: geom.Sector(i * 8),
		}); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()
}

func TestRunCleanAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	sealedDir(t, dir, 5)

	var out bytes.Buffer
	if err := run([]string{dir}, &out); err != nil {
		t.Fatalf("run over clean dir: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") || !strings.Contains(out.String(), "2 sealed segments") {
		t.Errorf("clean output = %q", out.String())
	}

	// Flip a sealed byte: non-zero exit and a CORRUPT line naming the dir.
	f, err := os.OpenFile(journal.JournalPath(dir), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 70); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out.Reset()
	if err := run([]string{dir}, &out); err == nil {
		t.Fatalf("run over corrupt dir succeeded:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "CORRUPT") || !strings.Contains(out.String(), dir) {
		t.Errorf("corrupt output = %q", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	sealedDir(t, dir, 4)
	var out bytes.Buffer
	if err := run([]string{"-json", dir}, &out); err != nil {
		t.Fatal(err)
	}
	var a journal.Audit
	if err := json.Unmarshal(out.Bytes(), &a); err != nil {
		t.Fatalf("decode %q: %v", out.String(), err)
	}
	if a.SealedRecords != 4 || len(a.Segments) != 2 || a.Dir != dir {
		t.Errorf("audit = %+v", a)
	}
}

func TestRunStrictTornTail(t *testing.T) {
	dir := t.TempDir()
	sealedDir(t, dir, 4)
	frame := journal.MarshalRecord(journal.Record{Kind: journal.RecWrite, Lba: geom.Ext(64, 8), Pba: 64})
	f, err := os.OpenFile(journal.JournalPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:15]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run([]string{dir}, &out); err != nil {
		t.Fatalf("torn tail failed without -strict: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "torn tail") {
		t.Errorf("torn output = %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-strict", dir}, &out); err == nil {
		t.Error("-strict accepted a torn tail")
	}
}

func TestRunExpandsVolumeRoot(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"b", "a"} {
		sub := filepath.Join(root, name)
		if err := os.Mkdir(sub, 0o777); err != nil {
			t.Fatal(err)
		}
		sealedDir(t, sub, 4)
	}
	var out bytes.Buffer
	if err := run([]string{"-json", root}, &out); err != nil {
		t.Fatal(err)
	}
	var dirs []string
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var a journal.Audit
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, filepath.Base(a.Dir))
	}
	if len(dirs) != 2 || dirs[0] != "a" || dirs[1] != "b" {
		t.Errorf("audited %v, want [a b] in sorted order", dirs)
	}

	if err := run([]string{t.TempDir()}, &out); err == nil {
		t.Error("run accepted a root with no journal state")
	}
	if err := run(nil, &out); err == nil {
		t.Error("run accepted an empty argument list")
	}
}
