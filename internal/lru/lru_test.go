package lru

import (
	"testing"
	"testing/quick"
)

func TestAddGet(t *testing.T) {
	c := New[string, int](100)
	c.Add("a", 1, 10)
	c.Add("b", 2, 10)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v", v, ok)
	}
	if _, ok := c.Get("zzz"); ok {
		t.Fatal("Get(zzz) should miss")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.Len() != 2 || c.Used() != 20 || c.Capacity() != 100 {
		t.Errorf("Len=%d Used=%d Cap=%d", c.Len(), c.Used(), c.Capacity())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[int, int](30)
	var evicted []int
	c.OnEvict(func(k, v int) { evicted = append(evicted, k) })
	c.Add(1, 1, 10)
	c.Add(2, 2, 10)
	c.Add(3, 3, 10)
	c.Get(1)        // 1 becomes hottest; coldest is 2
	c.Add(4, 4, 10) // must evict 2
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	if _, ok := c.Peek(2); ok {
		t.Error("2 should be gone")
	}
	if k, ok := c.Oldest(); !ok || k != 3 {
		t.Errorf("Oldest = %v,%v, want 3", k, ok)
	}
}

func TestOversizeEntryEvictedImmediately(t *testing.T) {
	c := New[string, int](10)
	var evicted []string
	c.OnEvict(func(k string, v int) { evicted = append(evicted, k) })
	c.Add("huge", 1, 100)
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("oversize entry retained: len=%d used=%d", c.Len(), c.Used())
	}
	if len(evicted) != 1 || evicted[0] != "huge" {
		t.Errorf("evicted = %v", evicted)
	}
}

func TestUpdateResizes(t *testing.T) {
	c := New[string, int](100)
	c.Add("a", 1, 10)
	c.Add("a", 2, 50)
	if c.Used() != 50 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d", c.Used(), c.Len())
	}
	if v, _ := c.Peek("a"); v != 2 {
		t.Error("update did not replace value")
	}
}

func TestRemove(t *testing.T) {
	c := New[string, int](100)
	c.OnEvict(func(k string, v int) { t.Errorf("OnEvict called for explicit Remove(%s)", k) })
	c.Add("a", 1, 10)
	if !c.Remove("a") {
		t.Fatal("Remove should report true")
	}
	if c.Remove("a") {
		t.Fatal("second Remove should report false")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Error("Remove did not release size")
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := New[int, int](1000)
	for i := 0; i < 5; i++ {
		c.Add(i, i, 1)
	}
	c.Get(0)
	got := c.Keys()
	want := []int{0, 4, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	c := New[int, int](100)
	c.Add(1, 1, 10)
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("Clear incomplete")
	}
	if _, ok := c.Oldest(); ok {
		t.Error("Oldest after Clear should report false")
	}
	c.Add(2, 2, 10) // still usable
	if c.Len() != 1 {
		t.Error("cache unusable after Clear")
	}
}

func TestZeroCapacityHoldsNothing(t *testing.T) {
	c := New[int, int](0)
	c.Add(1, 1, 1)
	if c.Len() != 0 {
		t.Error("zero-capacity cache must hold nothing")
	}
	c.Add(2, 2, 0) // zero-size entries fit in zero capacity
	if c.Len() != 1 {
		t.Error("zero-size entry should fit")
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	c := New[int, int](10)
	c.Add(1, 1, -5)
	if c.Used() != 0 {
		t.Errorf("Used = %d, want 0", c.Used())
	}
}

// Property: Used never exceeds capacity after any Add sequence, and Used
// equals the sum of surviving entries' sizes.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New[uint8, int](64)
		sizes := map[uint8]int64{}
		for i, k := range ops {
			size := int64(k % 17)
			c.Add(k, i, size)
			sizes[k] = size
			if c.Used() > 64 {
				return false
			}
		}
		var sum int64
		for _, k := range c.Keys() {
			sum += sizes[k]
		}
		return sum == c.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
