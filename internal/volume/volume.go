// Package volume hosts many independent translation-layer simulators in
// one process, the way SMORE-style SMR translation services host many
// volumes behind one daemon. Each Volume wraps one core.Simulator in a
// single-goroutine actor loop fed by a bounded request queue: the
// simulator and its layer stay strictly single-threaded (they are not
// internally synchronized, by design — see DESIGN.md §11 on the
// zero-allocation hot path), while any number of goroutines submit
// requests concurrently.
//
// The actor gives three properties the network service needs:
//
//   - Determinism: requests execute in queue order, one at a time, so a
//     volume fed a trace in order produces Stats bit-identical to a
//     direct single-threaded run of the same trace.
//   - Backpressure: the queue is bounded and TryDo never blocks — a
//     saturated volume sheds load with ErrOverloaded instead of growing
//     an unbounded queue (admission control, not buffering).
//   - Batching: when the queue is deep the actor drains up to BatchSize
//     requests per channel wakeup, amortizing scheduler round-trips at
//     saturation without changing execution order.
//
// Each volume owns a per-simulator obsv.Collector (attached through
// core.NewSimulator's per-simulator probes — NOT core.SetGlobalProbe,
// which would aggregate every volume into one probe) and, optionally, a
// write-ahead journal; Close drains the queue, checkpoints the layer via
// stl.Snapshot and closes the journal, in that order.
package volume

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/obsv"
	"smrseek/internal/stl"
	"smrseek/internal/trace"
)

// Submission and lifecycle errors.
var (
	// ErrOverloaded is returned by TryDo when the request queue is full:
	// the volume is saturated and the caller should back off or shed.
	ErrOverloaded = errors.New("volume: request queue full")
	// ErrClosed is returned for submissions after Close began.
	ErrClosed = errors.New("volume: closed")
	// ErrNoJournal is returned for Snapshot requests on a volume without
	// journal-backed durability.
	ErrNoJournal = errors.New("volume: no journal attached")
)

// Defaults for Config zero values.
const (
	DefaultQueueDepth = 256
	DefaultBatchSize  = 32
)

// Op identifies a volume request kind.
type Op uint8

// Request kinds. Read and Write step the simulator; Stat snapshots the
// accumulated statistics; Snapshot forces a journal checkpoint; Verify
// audits the journal directory's seal chain; Proof produces a Merkle
// inclusion proof for one sealed journal record.
const (
	OpWrite Op = iota + 1
	OpRead
	OpStat
	OpSnapshot
	OpVerify
	OpProof
	// OpSeal force-closes the journal's open Merkle segment, making every
	// acknowledged record sealed (and thus shippable) immediately.
	// Replication's force-seal tick submits these.
	OpSeal
	// OpShip reads the next replication chunk for a follower at
	// (Gen, Off): sealed journal bytes or the subsuming checkpoint. It
	// runs on the actor so the on-disk files are quiescent while read.
	OpShip
)

// String returns the op's lowercase name.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpStat:
		return "stat"
	case OpSnapshot:
		return "snapshot"
	case OpVerify:
		return "verify"
	case OpProof:
		return "proof"
	case OpSeal:
		return "seal"
	case OpShip:
		return "ship"
	}
	return fmt.Sprintf("op(%d)", o)
}

// Config describes one volume.
type Config struct {
	// Name identifies the volume to clients and in metrics.
	Name string
	// Sim is the simulator configuration. Sim.Journal must be nil: the
	// volume owns journaling through JournalDir.
	Sim core.Config
	// QueueDepth bounds the request queue (0 = DefaultQueueDepth). When
	// the queue is full TryDo sheds with ErrOverloaded.
	QueueDepth int
	// BatchSize caps how many requests the actor drains per channel
	// wakeup (0 = DefaultBatchSize). Order is unchanged; batching only
	// amortizes wakeups at saturation.
	BatchSize int
	// JournalDir, when non-empty, enables write-ahead journaling of the
	// layer's mutations in this directory. A directory already holding
	// journal state is recovered: the volume resumes from the
	// checkpoint+journal replay, exactly as smrsim -recover does.
	JournalDir string
	// CheckpointEvery checkpoints the layer after this many journal
	// records (0 = never mid-run; Close always checkpoints).
	CheckpointEvery int64
	// SealEvery sets the journal's Merkle segment size: how many records
	// fill a segment before it is sealed with a chained Merkle root
	// (0 = journal.DefaultSegmentSize).
	SealEvery int64
	// SkipVerifyOnRecover disables the seal-chain and checkpoint-linkage
	// audit that otherwise runs before recovering JournalDir. Verification
	// is on by default: a volume refuses to resume from a journal whose
	// sealed history does not check out (journal.ErrCorrupt), while torn
	// tails — plain crash residue — still recover.
	SkipVerifyOnRecover bool
	// RecoverWorkers bounds the worker pool verifying sealed segments
	// during recovery of JournalDir (0 = GOMAXPROCS, 1 = sequential; see
	// stl.RecoverOptions.Workers). The recovered state is bit-identical
	// at any count.
	RecoverWorkers int
	// OnSeal, when non-nil, subscribes to the journal's seal chain: it is
	// invoked on the actor goroutine after every seal boundary (segment
	// seal or checkpoint rebirth) with the sealed extent and the appends
	// watermark it commits. Replication sources attach here.
	OnSeal journal.SealFunc
}

// Result is one request's outcome.
type Result struct {
	// Frags is the read's resolved fragment count (0 for other ops).
	Frags int
	// Stats is the statistics snapshot for OpStat, nil otherwise.
	Stats *core.Stats
	// Audit is the journal audit for OpVerify, nil otherwise.
	Audit *journal.Audit
	// Proof is the inclusion proof for OpProof, nil otherwise.
	Proof *journal.Proof
	// Ship is the replication chunk for OpShip, nil otherwise.
	Ship *journal.ShipChunk
	// Seq is the journal's cumulative append watermark after an OpWrite
	// on a journaled volume (0 otherwise). Replication gates a write's
	// acknowledgment on followers covering this watermark.
	Seq int64
	// Err is the op-level failure: sticky journal errors for
	// reads/writes (journal.ErrCrashed, transient/media fault errors),
	// ErrNoJournal for Snapshot/Verify/Proof without a journal,
	// journal.ErrUnsealed for a proof of an unsealed record.
	Err error
	// Tag echoes the Request's Tag, so many requests can share one
	// buffered done channel and still attribute results — the SMRD2
	// server funnels a whole connection's completions through one
	// channel this way.
	Tag uint64
}

// Request is one queued operation. Extent is the logical range for
// reads and writes and ignored otherwise; Seq is the 1-based journal
// record sequence for Proof and ignored otherwise; Gen and Off are the
// requester's journal position for Ship and ignored otherwise. Tag is
// an opaque caller correlation value echoed in the Result.
type Request struct {
	Kind   Op
	Extent geom.Extent
	Seq    int64
	Gen    uint64
	Off    int64
	Tag    uint64
	done   chan<- Result
}

// Volume is one simulator behind an actor loop. All exported methods
// are safe for concurrent use.
type Volume struct {
	cfg   Config
	sim   *core.Simulator
	ls    *stl.LS
	wal   *journal.Log
	col   *obsv.Collector
	batch int

	queue chan Request

	mu     sync.RWMutex
	closed bool

	done     chan struct{} // closed when the actor has fully shut down
	closeErr error         // shutdown outcome; read after done
	final    core.Stats    // stats at shutdown; read after done

	frags fragProbe // actor-goroutine-only: last read's fragment count

	// Recovery describes what was replayed from JournalDir at Open, nil
	// for a fresh volume. Immutable after Open.
	Recovery *stl.ReplayStats
}

// fragProbe captures OpEvent.Frags so the actor can report a read's
// resolution in its response without re-resolving. It runs only on the
// actor goroutine.
type fragProbe struct{ frags int }

func (p *fragProbe) OnOp(ev core.OpEvent) {
	if ev.Kind == disk.Read {
		p.frags = ev.Frags
	}
}
func (p *fragProbe) OnAccess(core.AccessEvent)   {}
func (p *fragProbe) OnMech(core.MechEvent)       {}
func (p *fragProbe) OnJournal(core.JournalEvent) {}
func (p *fragProbe) OnSummary(core.Summary)      {}

// Open builds the volume and starts its actor. With JournalDir set, a
// directory already holding state is recovered first (checkpoint +
// journal replay) and the volume resumes from the recovered layer.
func Open(cfg Config) (*Volume, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("volume: empty name")
	}
	if cfg.Sim.Journal != nil {
		return nil, fmt.Errorf("volume %s: Sim.Journal must be nil (set JournalDir instead)", cfg.Name)
	}
	if cfg.QueueDepth < 0 || cfg.BatchSize < 0 {
		return nil, fmt.Errorf("volume %s: negative QueueDepth/BatchSize", cfg.Name)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("volume %s: negative CheckpointEvery %d", cfg.Name, cfg.CheckpointEvery)
	}
	if cfg.SealEvery < 0 {
		return nil, fmt.Errorf("volume %s: negative SealEvery %d", cfg.Name, cfg.SealEvery)
	}

	v := &Volume{
		cfg:   cfg,
		col:   obsv.NewCollector(),
		batch: cfg.BatchSize,
		queue: make(chan Request, cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	simCfg := cfg.Sim
	if cfg.JournalDir != "" {
		if !simCfg.LogStructured {
			return nil, fmt.Errorf("volume %s: journaling requires the log-structured layer", cfg.Name)
		}
		lg, recovered, rst, err := openJournal(cfg.JournalDir, simCfg.FrontierStart, cfg.SealEvery, !cfg.SkipVerifyOnRecover, cfg.RecoverWorkers)
		if err != nil {
			return nil, fmt.Errorf("volume %s: %w", cfg.Name, err)
		}
		if recovered != nil {
			simCfg.LogStructured = false
			simCfg.CustomLayer = recovered
			v.Recovery = rst
		}
		v.wal = lg
		simCfg.Journal = &core.JournalConfig{Log: lg, CheckpointEvery: cfg.CheckpointEvery}
	}
	sim, err := core.NewSimulator(simCfg, v.col, &v.frags)
	if err != nil {
		if v.wal != nil {
			v.wal.Close()
		}
		return nil, fmt.Errorf("volume %s: %w", cfg.Name, err)
	}
	v.sim = sim
	v.ls = sim.LS()
	if v.ls != nil {
		ls := v.ls
		v.col.SetStateFn(func() (geom.Sector, int) { return ls.Frontier(), ls.Map().Len() })
	}
	if cl, ok := sim.Disk().(core.Cleaner); ok {
		// Banded device: export its cache/cleaning gauges through the
		// collector (polled on the actor goroutine, like SetStateFn).
		v.col.SetCleaningFn(cl.Cleaning)
	}
	if v.wal != nil && cfg.OnSeal != nil {
		// Installation fires the hook once with the current sealed extent
		// (on this goroutine; afterwards only the actor goroutine fires it),
		// so the subscriber sees state sealed by recovery.
		v.wal.OnSeal(cfg.OnSeal)
	}
	go v.loop()
	return v, nil
}

// openJournal opens dir's write-ahead log, recovering and folding in any
// state a previous run left behind: the recovered state becomes a fresh
// checkpoint and the (possibly torn) journal is reborn clean. With
// verify set, recovery audits the seal chain first and refuses a
// directory with damage inside the sealed region (journal.ErrCorrupt).
func openJournal(dir string, frontier geom.Sector, sealEvery int64, verify bool, workers int) (*journal.Log, *stl.LS, *stl.ReplayStats, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, nil, err
	}
	segSize := func(lg *journal.Log) error {
		if sealEvery == 0 {
			return nil
		}
		return lg.SetSegmentSize(int(sealEvery))
	}
	_, jErr := os.Stat(journal.JournalPath(dir))
	_, cErr := os.Stat(journal.CheckpointPath(dir))
	if jErr != nil && cErr != nil {
		lg, err := journal.Open(dir, frontier)
		if err != nil {
			return nil, nil, nil, err
		}
		return lg, nil, nil, segSize(lg)
	}
	recovered, rst, err := stl.RecoverDirWith(dir, stl.RecoverOptions{VerifyOnRecover: verify, Workers: workers})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := os.Remove(journal.JournalPath(dir)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, err
	}
	lg, err := journal.Open(dir, recovered.Frontier())
	if err != nil {
		return nil, nil, nil, err
	}
	if err := segSize(lg); err != nil {
		lg.Close()
		return nil, nil, nil, err
	}
	if err := lg.Checkpoint(recovered.Snapshot()); err != nil {
		lg.Close()
		return nil, nil, nil, err
	}
	return lg, recovered, &rst, nil
}

// Name returns the volume's name.
func (v *Volume) Name() string { return v.cfg.Name }

// Collector returns the volume's private metrics collector, for
// registration on a shared obsv.Registry.
func (v *Volume) Collector() *obsv.Collector { return v.col }

// TryDo submits a request without blocking. done must be buffered
// (cap >= 1); the result is delivered on it. A full queue returns
// ErrOverloaded — the backpressure signal — and a closed volume
// ErrClosed; in both cases nothing is delivered on done.
func (v *Volume) TryDo(req Request, done chan Result) error {
	if cap(done) == 0 {
		return fmt.Errorf("volume: done channel must be buffered")
	}
	req.done = done
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	select {
	case v.queue <- req:
		return nil
	default:
		return ErrOverloaded
	}
}

// Do submits a request, blocking until it is queued (or ctx ends), and
// waits for the result. The returned error is either a submission
// failure (ErrClosed, ctx.Err()) or the result's own Err.
func (v *Volume) Do(ctx context.Context, kind Op, ext geom.Extent) (Result, error) {
	return v.DoRequest(ctx, Request{Kind: kind, Extent: ext})
}

// DoRequest is Do for a fully-specified Request (e.g. OpProof, which
// needs Seq). The request's done channel is ignored and replaced.
func (v *Volume) DoRequest(ctx context.Context, req Request) (Result, error) {
	done := make(chan Result, 1)
	req.done = done
	v.mu.RLock()
	if v.closed {
		v.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case v.queue <- req:
		v.mu.RUnlock()
	case <-ctx.Done():
		v.mu.RUnlock()
		return Result{}, ctx.Err()
	}
	select {
	case res := <-done:
		return res, res.Err
	case <-ctx.Done():
		// The request stays queued and will execute; its result lands in
		// the buffered channel and is garbage collected. Only this
		// waiter gives up.
		return Result{}, ctx.Err()
	}
}

// loop is the actor: it executes queued requests strictly in order on
// one goroutine, draining up to batch requests per wakeup.
func (v *Volume) loop() {
	for req := range v.queue {
		v.process(req)
		for i := 1; i < v.batch; i++ {
			select {
			case more, ok := <-v.queue:
				if !ok {
					// Closed and fully drained; the outer range observes
					// the same and exits.
					i = v.batch
					continue
				}
				v.process(more)
			default:
				i = v.batch
			}
		}
	}
	v.shutdown()
}

func (v *Volume) process(req Request) {
	res := Result{Tag: req.Tag}
	switch req.Kind {
	case OpWrite:
		v.sim.Step(trace.Record{Kind: disk.Write, Extent: req.Extent})
		res.Err = v.sim.JournalErr()
		if v.wal != nil {
			res.Seq = v.wal.Appends()
		}
	case OpRead:
		v.frags.frags = 0
		v.sim.Step(trace.Record{Kind: disk.Read, Extent: req.Extent})
		res.Frags = v.frags.frags
		res.Err = v.sim.JournalErr()
	case OpStat:
		st := v.sim.Stats()
		res.Stats = &st
	case OpSnapshot:
		res.Err = v.checkpoint()
	case OpVerify:
		res.Audit, res.Err = v.verify()
	case OpProof:
		res.Proof, res.Err = v.prove(req.Seq)
	case OpSeal:
		res.Err = v.forceSeal()
	case OpShip:
		res.Ship, res.Err = v.ship(req.Gen, req.Off)
	default:
		res.Err = fmt.Errorf("volume: unknown op %d", req.Kind)
	}
	if req.done != nil {
		req.done <- res
	}
}

// verify audits the journal directory: seal chain, segment roots,
// checkpoint linkage. The journal is flushed first so the audit sees
// every acknowledged record. Runs on the actor goroutine only — the
// actor is idle while VerifyDir reads the files, so the on-disk state
// is consistent.
func (v *Volume) verify() (*journal.Audit, error) {
	if v.wal == nil {
		return nil, ErrNoJournal
	}
	if err := v.wal.Sync(); err != nil {
		return nil, err
	}
	return journal.VerifyDir(v.wal.Dir())
}

// prove returns the inclusion proof for the seq'th record of the
// journal's current generation. Runs on the actor goroutine only.
func (v *Volume) prove(seq int64) (*journal.Proof, error) {
	if v.wal == nil {
		return nil, ErrNoJournal
	}
	p, err := v.wal.Prove(seq)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// ShipChunkBytes softly caps one OpShip response's payload; a single
// over-size segment still ships whole. It leaves headroom under the wire
// protocol's 1 MiB frame cap.
const ShipChunkBytes = 512 << 10

// forceSeal closes the journal's open Merkle segment so every
// acknowledged record becomes sealed and shippable. Runs on the actor
// goroutine only.
func (v *Volume) forceSeal() error {
	if v.wal == nil {
		return ErrNoJournal
	}
	if err := v.sim.JournalErr(); err != nil {
		return err
	}
	return v.wal.Seal()
}

// ship reads the next replication chunk for a follower at (gen, off).
// Runs on the actor goroutine only — the actor is idle while the files
// are read, so the sealed prefix is consistent. The journal is synced
// first so a follower is never ahead of the primary's own durability.
func (v *Volume) ship(gen uint64, off int64) (*journal.ShipChunk, error) {
	if v.wal == nil {
		return nil, ErrNoJournal
	}
	if err := v.wal.Sync(); err != nil {
		return nil, err
	}
	chunk, err := journal.ShipFrom(v.wal.Dir(), gen, off, ShipChunkBytes)
	if err != nil {
		return nil, err
	}
	return &chunk, nil
}

// checkpoint persists the layer's full state through the journal. Runs
// on the actor goroutine only.
func (v *Volume) checkpoint() error {
	if v.wal == nil || v.ls == nil {
		return ErrNoJournal
	}
	if err := v.sim.JournalErr(); err != nil {
		return err
	}
	return v.wal.Checkpoint(v.ls.Snapshot())
}

// shutdown finishes the run on the actor goroutine once the queue is
// drained: final checkpoint (journaled volumes), end-of-run Summary to
// the collector, final stats freeze, journal close — in that order, so
// the on-disk checkpoint reflects every executed request and the
// collector's Summary arrives after the last op.
func (v *Volume) shutdown() {
	var err error
	if v.wal != nil && v.ls != nil && v.sim.JournalErr() == nil {
		err = v.wal.Checkpoint(v.ls.Snapshot())
	}
	v.sim.Finish()
	v.final = v.sim.Stats()
	if v.wal != nil {
		if cerr := v.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	v.closeErr = err
	close(v.done)
}

// Close stops intake, waits for the actor to drain every queued request,
// checkpoints journaled state and closes the journal. It is idempotent;
// every caller gets the shutdown outcome.
func (v *Volume) Close() error {
	v.mu.Lock()
	if !v.closed {
		v.closed = true
		close(v.queue)
	}
	v.mu.Unlock()
	<-v.done
	return v.closeErr
}

// Stats returns the volume's final statistics. It is only valid after
// Close has returned; use an OpStat request for a live snapshot.
func (v *Volume) Stats() core.Stats {
	<-v.done
	return v.final
}
