// Cleaning example: the trade-off the paper's §II describes between the
// two ways to build an SMR translation layer, measured end to end.
//
// An OLTP-style workload (small random updates over a bounded footprint,
// plus point reads) runs against:
//
//   - the paper's infinite log-structured layer (no cleaning — the
//     archival assumption);
//   - a finite log with greedy and cost-benefit segment cleaning, sized
//     with tight over-provisioning so the cleaner must keep up;
//   - the media-cache layer shipped drive-managed SMR devices use.
//
// The log-structured designs pay read seeks (fragmentation); the media
// cache pays write amplification (whole-zone merges). The paper's three
// mechanisms attack the first cost; this example shows why that matters.
package main

import (
	"fmt"
	"log"

	"smrseek"
)

func main() {
	recs := buildWorkload()
	base, err := smrseek.Run(smrseek.Config{}, recs)
	if err != nil {
		log.Fatal(err)
	}

	footprint := smrseek.WriteFootprint(recs)
	maxLBA := smrseek.MaxLBA(recs)
	const seg = 2048 // 1 MiB segments
	logSectors := ((footprint*11/10)/seg + 4) * seg

	fmt.Printf("workload: %d ops, %.1f MB footprint, log %.1f MB\n",
		len(recs), float64(footprint)*512/1e6, float64(logSectors)*512/1e6)
	fmt.Printf("%-22s %9s %9s %7s %12s\n", "layer", "read SAF", "total SAF", "WAF", "cleanings")

	show := func(label string, cfg smrseek.Config, cleanings func() int64) {
		st, err := smrseek.Run(cfg, recs)
		if err != nil {
			log.Fatal(err)
		}
		n := int64(0)
		if cleanings != nil {
			n = cleanings()
		}
		fmt.Printf("%-22s %9.2f %9.2f %7.2f %12d\n", label,
			float64(st.Disk.ReadSeeks)/float64(base.Disk.ReadSeeks),
			float64(st.Disk.TotalSeeks())/float64(base.Disk.TotalSeeks()),
			st.WAF, n)
	}

	show("LS (infinite)", smrseek.Config{LogStructured: true}, nil)

	for _, pol := range []smrseek.GCPolicy{smrseek.Greedy, smrseek.CostBenefit} {
		layer, err := smrseek.NewGCLayer(smrseek.GCConfig{
			DeviceSectors:  maxLBA,
			LogSectors:     logSectors,
			SegmentSectors: seg,
			Policy:         pol,
		})
		if err != nil {
			log.Fatal(err)
		}
		show(layer.Name(), smrseek.Config{CustomLayer: layer}, layer.Cleanings)
	}

	zone := int64(8192)
	mcl, err := smrseek.NewMediaCacheLayer(smrseek.MediaCacheConfig{
		DeviceSectors: ((maxLBA + zone) / zone) * zone,
		ZoneSectors:   zone,
		CacheSectors:  8 * zone,
	})
	if err != nil {
		log.Fatal(err)
	}
	show("MediaCache", smrseek.Config{CustomLayer: mcl}, mcl.Merges)
}

// buildWorkload emits an update-heavy pattern: load a 24 MB table, then
// interleave 4 KB updates with point reads.
func buildWorkload() []smrseek.Record {
	const table = 48 * 1024 // sectors
	var recs []smrseek.Record
	t := int64(0)
	emit := func(kind smrseek.OpKind, lba, n int64) {
		recs = append(recs, smrseek.Record{Time: t, Kind: kind, Extent: smrseek.Extent{Start: lba, Count: n}})
		t += 1_000_000
	}
	for off := int64(0); off < table; off += 2048 {
		emit(smrseek.Write, off, 2048)
	}
	seed := uint64(11)
	next := func(mod int64) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int64(seed % uint64(mod))
	}
	for i := 0; i < 30000; i++ {
		if i%3 == 0 {
			emit(smrseek.Read, next(table-64), 64)
		} else {
			emit(smrseek.Write, next(table-8), 8)
		}
	}
	return recs
}
