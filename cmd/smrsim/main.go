// Command smrsim runs one workload (a named synthetic workload or a
// trace file) through the seek simulator under a chosen translation
// layer and mechanisms, and prints seek statistics and, with -all, the
// paper's Figure 11 comparison for that workload.
//
// Examples:
//
//	smrsim -workload w91 -all
//	smrsim -workload hm_1 -ls -cache -time
//	smrsim -trace disk0.csv -format msr -disk 0 -ls -prefetch
//	smrsim -workload hm_1 -journal /tmp/wal -checkpoint-every 1000
//	smrsim -workload hm_1 -journal /tmp/wal -crash-after 500   # then:
//	smrsim -journal /tmp/wal -recover
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"smrseek"
	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/journal"
	"smrseek/internal/metrics"
	"smrseek/internal/obsv"
	"smrseek/internal/report"
	"smrseek/internal/stl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smrsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smrsim", flag.ContinueOnError)
	var (
		workloadName = fs.String("workload", "", "named synthetic workload (see traceinfo -list)")
		scale        = fs.Float64("scale", 0.5, "workload scale (multiplies base op count)")
		tracePath    = fs.String("trace", "", "trace file to simulate instead of a named workload")
		format       = fs.String("format", "cp", `trace format: "msr" or "cp"`)
		diskNum      = fs.Int("disk", -1, "MSR disk number filter (-1 = all)")
		all          = fs.Bool("all", false, "run the full Figure 11 variant comparison")
		layerName    = fs.String("layer", "", `translation layer: "segls" (finite log + greedy cleaning) or "mcache" (media cache); default is NoLS/LS per -ls`)
		ls           = fs.Bool("ls", false, "use the log-structured layer")
		defrag       = fs.Bool("defrag", false, "enable opportunistic defragmentation (implies -ls)")
		prefetch     = fs.Bool("prefetch", false, "enable look-ahead-behind prefetching (implies -ls)")
		cache        = fs.Bool("cache", false, "enable 64 MB selective caching (implies -ls)")
		cacheMB      = fs.Int64("cache-mb", 64, "selective cache size in MiB")
		withTime     = fs.Bool("time", false, "also report modelled service time (7200 RPM drive)")
		faultRate    = fs.Float64("fault-rate", 0, "per-access transient fault probability for reads and writes (0 disables injection)")
		poisonRate   = fs.Float64("poison-rate", 0, "probability a cache/prefetch-buffer serve is corrupt and falls back to the medium")
		faultSeed    = fs.Uint64("fault-seed", 1, "fault injector seed (same seed => identical fault sequence)")
		mediaErrors  = fs.String("media-errors", "", `persistent media-error PBA ranges, "start:count,start:count,..."`)
		timeout      = fs.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
		preloadN     = fs.Int("preload", 1, "parse the trace once into memory and replay the run N times (perf measurement; N>1 needs a stateless run)")
		journalDir   = fs.String("journal", "", "write-ahead-journal directory: STL mutations are logged and checkpointed there (implies -ls)")
		ckptEvery    = fs.Int64("checkpoint-every", 4096, "checkpoint the STL after this many journal records (with -journal; 0 = never)")
		crashAfter   = fs.Int64("crash-after", 0, "inject a crash on the Nth journal append, leaving a torn record (with -journal)")
		recoverFlag  = fs.Bool("recover", false, "recover the STL state from the -journal directory; alone it just reports, with a workload it continues the run")
		traceOut     = fs.String("trace-out", "", "record the run's event trace to this file (replayable binary; a .txt suffix writes human-readable text)")
		hist         = fs.Bool("hist", false, "collect seek/fragmentation/latency histograms and print them (with the seek-distance CDF) after the run")
		metricsAddr  = fs.String("metrics-addr", "", `serve live JSON metrics and expvar on this address while the run is in flight (e.g. "127.0.0.1:8080")`)
		pprofFlag    = fs.Bool("pprof", false, "also serve net/http/pprof on -metrics-addr")
		geometry     = fs.String("geometry", "infinite", `disk geometry: "infinite" (the paper's §II model) or "band" (finite banded device)`)
		bandSize     = fs.Int64("band-size", 0, "band size in sectors for -geometry band (0 = the 10 MB default)")
		pcache       = fs.Int64("pcache", 0, "persistent cache size in sectors for -geometry band (0 disables the cache: rewrites stay in place)")
		cleanPolicy  = fs.String("clean-policy", "pol-a", `cache placement/cleaning policy for -geometry band: "pol-a", "pol-b" or "shelter"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	recoverOnly := *recoverFlag && *workloadName == "" && *tracePath == ""
	if err := validateFlags(*scale, *timeout, *journalDir, *ckptEvery, *crashAfter,
		*recoverFlag, *all, *layerName, *cacheMB, *preloadN); err != nil {
		return err
	}
	obs := obsvOpts{traceOut: *traceOut, hist: *hist, addr: *metricsAddr, pprof: *pprofFlag}
	if err := obs.validate(*all, recoverOnly, *preloadN); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	faultCfg, err := buildFaultConfig(*faultRate, *poisonRate, *faultSeed, *mediaErrors)
	if err != nil {
		return err
	}
	newDevice, err := buildDevice(*geometry, *bandSize, *pcache, *cleanPolicy, setFlags, *all, faultCfg != nil)
	if err != nil {
		return err
	}

	// Standalone recovery: report what the journal directory holds.
	if *recoverFlag && *workloadName == "" && *tracePath == "" {
		return runRecoverOnly(out, *journalDir)
	}

	recs, name, err := loadRecords(*workloadName, *scale, *tracePath, *format, *diskNum)
	if err != nil {
		return err
	}
	c := smrseek.Characterize(recs)
	fmt.Fprintf(out, "workload %s: %s reads, %s writes, %.2f GB read, %.2f GB written\n",
		name, report.HumanCount(c.ReadCount), report.HumanCount(c.WriteCount), c.ReadGB(), c.WrittenGB())

	if *all {
		if faultCfg != nil {
			return fmt.Errorf("-fault-rate/-poison-rate/-media-errors cannot be combined with -all (SAF comparisons need fault-free runs)")
		}
		return runAll(ctx, out, recs)
	}

	cfg := smrseek.Config{LogStructured: *layerName == "" &&
		(*ls || *defrag || *prefetch || *cache || *journalDir != "")}
	if *layerName != "" {
		layer, err := buildLayer(*layerName, recs)
		if err != nil {
			return err
		}
		cfg.CustomLayer = layer
	}
	if *defrag {
		d := smrseek.DefaultDefrag()
		cfg.Defrag = &d
	}
	if *prefetch {
		p := smrseek.DefaultPrefetch()
		cfg.Prefetch = &p
	}
	if *cache {
		cc := smrseek.CacheConfig{CapacityBytes: *cacheMB << 20}
		cfg.Cache = &cc
	}
	cfg.Fault = faultCfg

	var recovery *stl.ReplayStats
	if *journalDir != "" {
		if cfg.FrontierStart == 0 {
			cfg.FrontierStart = core.FrontierFor(recs)
		}
		var lg *journal.Log
		if *recoverFlag {
			recovered, rst, err := stl.RecoverDir(*journalDir)
			if err != nil {
				return err
			}
			recovery = &rst
			// The recovered state (journal included) becomes the new
			// checkpoint; the journal — possibly torn — is reborn clean.
			if err := os.Remove(journal.JournalPath(*journalDir)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
			lg, err = journal.Open(*journalDir, recovered.Frontier())
			if err != nil {
				return err
			}
			if err := lg.Checkpoint(recovered.Snapshot()); err != nil {
				return err
			}
			cfg.LogStructured = false
			cfg.CustomLayer = recovered
		} else {
			// A fresh run must not append to a directory that already
			// holds another run's history: the combined log would no
			// longer describe one coherent state and recovery would
			// (rightly) refuse it.
			for _, p := range []string{journal.JournalPath(*journalDir), journal.CheckpointPath(*journalDir)} {
				if _, statErr := os.Stat(p); statErr == nil {
					return fmt.Errorf("journal directory %s already holds state (%s); pass -recover to resume it or use an empty directory", *journalDir, filepath.Base(p))
				}
			}
			lg, err = journal.Open(*journalDir, cfg.FrontierStart)
			if err != nil {
				return err
			}
		}
		defer lg.Close()
		if *crashAfter > 0 {
			// Tear the record mid-payload: the worst-case torn write the
			// recovery path must detect and discard.
			lg.CrashAfter(*crashAfter, 12)
		}
		cfg.Journal = &core.JournalConfig{Log: lg, CheckpointEvery: *ckptEvery}
	}
	return runOne(ctx, out, smrseek.PreloadRecords(recs), cfg, newDevice, *withTime, recovery, obs, *preloadN)
}

// buildDevice validates the geometry flags and returns a factory for
// the chosen device model — nil for the default infinite disk. A
// factory (not a device) because -preload N replays build one fresh
// simulator per replay, and a banded device is stateful.
func buildDevice(geometry string, bandSize, pcacheSectors int64, policyName string,
	setFlags map[string]bool, all, faults bool) (func() (smrseek.Device, error), error) {
	switch geometry {
	case "infinite":
		for _, f := range []string{"band-size", "pcache", "clean-policy"} {
			if setFlags[f] {
				return nil, fmt.Errorf("-%s requires -geometry band", f)
			}
		}
		return nil, nil
	case "band":
		if all {
			return nil, fmt.Errorf("-geometry band cannot be combined with -all (the Figure 11 comparison is defined on the paper's infinite model)")
		}
		if faults && pcacheSectors > 0 {
			return nil, fmt.Errorf("-pcache cannot be combined with fault injection (retry semantics of a faulted cache redirect are undefined; drop -fault-rate/-poison-rate/-media-errors or -pcache)")
		}
		pol, err := smrseek.ParseBandPolicy(policyName)
		if err != nil {
			return nil, err
		}
		cfg := smrseek.BandConfig{BandSectors: bandSize, CacheSectors: pcacheSectors, Policy: pol}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return func() (smrseek.Device, error) { return smrseek.NewBandDevice(cfg) }, nil
	default:
		return nil, fmt.Errorf("unknown geometry %q (want infinite or band)", geometry)
	}
}

// obsvOpts carries the observability flags: event-trace recording,
// histogram collection and the live metrics endpoint.
type obsvOpts struct {
	traceOut string
	hist     bool
	addr     string
	pprof    bool
}

func (o obsvOpts) enabled() bool { return o.traceOut != "" || o.hist || o.addr != "" }

// validate rejects observability flags in modes that don't run exactly
// one simulation: -all runs the whole variant comparison and standalone
// -recover runs none. -crash-after IS compatible — a crash run's trace
// replays to the pre-crash stats. With -preload N>1 the histogram and
// metrics probes follow the final replay, but an event trace of N runs
// would not replay to one coherent state, so -trace-out is rejected.
func (o obsvOpts) validate(all, recoverOnly bool, preload int) error {
	switch {
	case o.pprof && o.addr == "":
		return fmt.Errorf("-pprof requires -metrics-addr (pprof is served on the metrics endpoint)")
	case all && o.enabled():
		return fmt.Errorf("-trace-out/-hist/-metrics-addr cannot be combined with -all (they follow a single run)")
	case recoverOnly && o.enabled():
		return fmt.Errorf("-trace-out/-hist/-metrics-addr need a workload to observe; standalone -recover runs none")
	case preload > 1 && o.traceOut != "":
		return fmt.Errorf("-trace-out cannot be combined with -preload %d (an event trace follows a single run)", preload)
	}
	return nil
}

// validateFlags rejects nonsensical flag combinations up front, before
// any trace is loaded or journal created.
func validateFlags(scale float64, timeout time.Duration, journalDir string,
	ckptEvery, crashAfter int64, recoverFlag, all bool, layerName string, cacheMB int64, preload int) error {
	switch {
	case scale <= 0:
		return fmt.Errorf("-scale %v must be positive", scale)
	case preload < 1:
		return fmt.Errorf("-preload %d must be at least 1", preload)
	case preload > 1 && (journalDir != "" || recoverFlag || crashAfter > 0 || layerName != "" || all):
		return fmt.Errorf("-preload %d replays the same run and needs it stateless; drop -journal/-recover/-crash-after/-layer/-all", preload)
	case timeout < 0:
		return fmt.Errorf("-timeout %v must not be negative", timeout)
	case cacheMB <= 0:
		return fmt.Errorf("-cache-mb %d must be positive", cacheMB)
	case ckptEvery < 0:
		return fmt.Errorf("-checkpoint-every %d must not be negative", ckptEvery)
	case crashAfter < 0:
		return fmt.Errorf("-crash-after %d must not be negative", crashAfter)
	case recoverFlag && journalDir == "":
		return fmt.Errorf("-recover requires -journal DIR (there is nothing to recover from)")
	case crashAfter > 0 && journalDir == "":
		return fmt.Errorf("-crash-after requires -journal DIR (crash points live in the journal)")
	case journalDir != "" && all:
		return fmt.Errorf("-journal cannot be combined with -all (journaling follows one run)")
	case journalDir != "" && layerName != "":
		return fmt.Errorf("-journal requires the built-in LS layer, not -layer %s", layerName)
	}
	return nil
}

// runRecoverOnly recovers the STL state from the journal directory and
// reports what replay found, without running any workload.
func runRecoverOnly(out io.Writer, dir string) error {
	recovered, rst, err := stl.RecoverDir(dir)
	if err != nil {
		return err
	}
	m := recovered.Map()
	fmt.Fprintf(out, "recovered STL state from %s: frontier %d, %s mappings, %s mapped sectors\n",
		dir, recovered.Frontier(), report.HumanCount(int64(m.Len())), report.HumanCount(m.MappedSectors()))
	return report.DurabilityTable(replayDurability(rst)).Render(out)
}

// replayDurability converts recovery replay stats to the report's
// durability tallies.
func replayDurability(rst stl.ReplayStats) metrics.Durability {
	return metrics.Durability{
		Recovered:       true,
		RecordsReplayed: rst.Replayed,
		ReplayedSectors: rst.ReplayedSectors,
		TornTail:        rst.TornTail,
		FromCheckpoint:  rst.FromCheckpoint,
	}
}

// buildFaultConfig assembles a fault configuration from the CLI flags,
// or nil when injection is disabled.
func buildFaultConfig(rate, poison float64, seed uint64, mediaSpec string) (*smrseek.FaultConfig, error) {
	ranges, err := parseMediaRanges(mediaSpec)
	if err != nil {
		return nil, err
	}
	if rate == 0 && poison == 0 && len(ranges) == 0 {
		return nil, nil
	}
	cfg := smrseek.FaultConfig{
		Seed:        seed,
		ReadRate:    rate,
		WriteRate:   rate,
		PoisonRate:  poison,
		MediaRanges: ranges,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// parseMediaRanges parses "start:count,start:count,..." into PBA extents.
func parseMediaRanges(spec string) ([]geom.Extent, error) {
	if spec == "" {
		return nil, nil
	}
	var out []geom.Extent
	for _, part := range strings.Split(spec, ",") {
		start, count, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("media range %q: want start:count", part)
		}
		s, err := strconv.ParseInt(start, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("media range %q: bad start: %v", part, err)
		}
		n, err := strconv.ParseInt(count, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("media range %q: bad count: %v", part, err)
		}
		out = append(out, geom.Ext(geom.Sector(s), n))
	}
	return out, nil
}

// buildLayer constructs an alternative translation layer sized to the
// workload: segls gets a finite log at ~1.1x the write footprint with
// greedy cleaning; mcache gets 64 MiB zones and a 512 MiB media cache.
func buildLayer(name string, recs []smrseek.Record) (smrseek.Layer, error) {
	switch name {
	case "segls":
		const seg = 8192
		footprint := smrseek.WriteFootprint(recs)
		return smrseek.NewGCLayer(smrseek.GCConfig{
			DeviceSectors:  smrseek.MaxLBA(recs),
			LogSectors:     ((footprint*11/10)/seg + 4) * seg,
			SegmentSectors: seg,
			Policy:         smrseek.Greedy,
		})
	case "mcache":
		const zone = 64 << 11 // 64 MiB
		maxLBA := smrseek.MaxLBA(recs)
		return smrseek.NewMediaCacheLayer(smrseek.MediaCacheConfig{
			DeviceSectors: ((maxLBA + zone) / zone) * zone,
			ZoneSectors:   zone,
			CacheSectors:  8 * zone,
		})
	default:
		return nil, fmt.Errorf("unknown layer %q (want segls or mcache)", name)
	}
}

func loadRecords(workloadName string, scale float64, tracePath, format string, diskNum int) ([]smrseek.Record, string, error) {
	switch {
	case workloadName != "" && tracePath != "":
		return nil, "", fmt.Errorf("pass -workload or -trace, not both")
	case workloadName != "":
		p, err := smrseek.Workload(workloadName)
		if err != nil {
			return nil, "", err
		}
		return p.Generate(scale), p.Name, nil
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		r, err := smrseek.OpenTrace(f, smrseek.TraceFormat(format), diskNum)
		if err != nil {
			return nil, "", err
		}
		recs, err := smrseek.ReadAll(r)
		if err != nil {
			return nil, "", err
		}
		return recs, tracePath, nil
	default:
		return nil, "", fmt.Errorf("pass -workload NAME or -trace FILE (workloads: %v)", smrseek.Workloads())
	}
}

func runAll(ctx context.Context, out io.Writer, recs []smrseek.Record) error {
	cmp, err := smrseek.ComparePaperContext(ctx, recs)
	if err != nil {
		return err
	}
	tb := report.NewTable("seek amplification factor vs NoLS baseline",
		"variant", "read seeks", "write seeks", "read SAF", "write SAF", "total SAF")
	b := cmp.Baseline.Disk
	tb.AddRow("NoLS", report.HumanCount(b.ReadSeeks), report.HumanCount(b.WriteSeeks), 1.0, 1.0, 1.0)
	for _, v := range cmp.Variants {
		tb.AddRow(v.Name, report.HumanCount(v.Stats.Disk.ReadSeeks),
			report.HumanCount(v.Stats.Disk.WriteSeeks), v.Read, v.Write, v.Total)
	}
	return tb.Render(out)
}

func runOne(ctx context.Context, out io.Writer, pl *smrseek.Preloaded, cfg smrseek.Config,
	newDevice func() (smrseek.Device, error), withTime bool, recovery *stl.ReplayStats, obs obsvOpts, replays int) error {
	// Baseline for SAF, always fault-free so SAF compares like with like.
	base, err := smrseek.RunPreloadedContext(ctx, smrseek.Config{}, pl)
	if err != nil {
		return err
	}

	if cfg.LogStructured && cfg.FrontierStart == 0 {
		cfg.FrontierStart = pl.MaxLBA()
	}
	// With -preload N > 1 the run is replayed from the in-memory arena N
	// times — each replay builds a fresh simulator, so iterations are
	// identical and the per-replay wall time isolates simulation cost
	// from parsing. Probes and the time model follow the final replay.
	var (
		st      smrseek.Stats
		crashed bool
	)
	for i := 0; i < replays; i++ {
		last := i == replays-1
		if newDevice != nil {
			// A fresh device per replay: the banded device is stateful
			// (write pointers, cache contents), and replays must be
			// identical.
			if cfg.Device, err = newDevice(); err != nil {
				return err
			}
		}
		sim, err := smrseek.NewSimulator(cfg)
		if err != nil {
			return err
		}
		var tracer *obsv.Tracer
		if last && obs.traceOut != "" {
			if tracer, err = obsv.Create(obs.traceOut); err != nil {
				return err
			}
			sim.AddProbe(tracer)
		}
		var col *obsv.Collector
		if last && (obs.hist || obs.addr != "") {
			col = obsv.NewCollector()
			if ls := sim.LS(); ls != nil {
				col.SetStateFn(func() (geom.Sector, int) { return ls.Frontier(), ls.Map().Len() })
			}
			if cl, ok := sim.Disk().(core.Cleaner); ok {
				col.SetCleaningFn(cl.Cleaning)
			}
			sim.AddProbe(col)
		}
		if last && obs.addr != "" {
			srv, err := obsv.Serve(obs.addr, col, obs.pprof)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", srv.Addr())
		}
		var acc *disk.TimeAccumulator
		if last && withTime {
			acc = disk.NewTimeAccumulator(disk.DefaultTimeModel())
			sim.Disk().AddObserver(acc)
		}
		start := time.Now()
		st, err = sim.RunContext(ctx, pl.NewReader())
		crashed = errors.Is(err, journal.ErrCrashed)
		if err != nil && !crashed {
			return err
		}
		if replays > 1 {
			fmt.Fprintf(out, "replay %d/%d: %s ops in %v\n", i+1, replays,
				report.HumanCount(int64(pl.Len())), time.Since(start).Round(time.Millisecond))
		}
		if !last {
			continue
		}
		if err := renderOne(out, cfg, st, base, acc, tracer, col, recovery, obs, crashed); err != nil {
			return err
		}
	}
	return nil
}

// renderOne prints the result tables for the (final) run.
func renderOne(out io.Writer, cfg smrseek.Config, st, base smrseek.Stats, acc *disk.TimeAccumulator,
	tracer *obsv.Tracer, col *obsv.Collector, recovery *stl.ReplayStats, obs obsvOpts, crashed bool) error {
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("event trace %s: %w", obs.traceOut, err)
		}
		fmt.Fprintf(out, "event trace written to %s\n", obs.traceOut)
	}

	tb := report.NewTable(fmt.Sprintf("%s results", cfg.Name()), "metric", "value")
	tb.AddRow("read seeks", report.HumanCount(st.Disk.ReadSeeks))
	tb.AddRow("write seeks", report.HumanCount(st.Disk.WriteSeeks))
	tb.AddRow("read SAF", metrics.SAF(st.Disk.ReadSeeks, base.Disk.ReadSeeks))
	tb.AddRow("write SAF", metrics.SAF(st.Disk.WriteSeeks, base.Disk.WriteSeeks))
	tb.AddRow("total SAF", metrics.SAF(st.Disk.TotalSeeks(), base.Disk.TotalSeeks()))
	tb.AddRow("fragmented reads", report.HumanCount(st.FragmentedReads))
	tb.AddRow("max fragments/read", st.MaxFragments)
	if cfg.Cache != nil {
		tb.AddRow("cache hits", report.HumanCount(st.CacheHits))
		tb.AddRow("cache invalidations", report.HumanCount(st.CacheInvalidations))
	}
	if cfg.Prefetch != nil {
		tb.AddRow("prefetch hits", report.HumanCount(st.PrefetchHits))
	}
	if cfg.Defrag != nil {
		tb.AddRow("defrag write-backs", report.HumanCount(st.DefragWritebacks))
	}
	if st.MaintSectors > 0 {
		tb.AddRow("maintenance reads", report.HumanCount(st.MaintReads))
		tb.AddRow("maintenance writes", report.HumanCount(st.MaintWrites))
		tb.AddRow("write amplification", st.WAF)
	}
	if acc != nil {
		tb.AddRow("modelled read time", acc.ReadTime.Round(time.Millisecond).String())
		tb.AddRow("modelled write time", acc.WriteTime.Round(time.Millisecond).String())
		tb.AddRow("modelled seek time", acc.SeekTime.Round(time.Millisecond).String())
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	if st.Cleaning.Any() {
		fmt.Fprintln(out)
		if err := report.CleaningTable(st.Cleaning).Render(out); err != nil {
			return err
		}
	}
	if cfg.Fault != nil {
		fmt.Fprintln(out)
		if err := report.ResilienceTable(st.Resilience).Render(out); err != nil {
			return err
		}
	}
	if cfg.Journal != nil {
		d := st.Durability
		if recovery != nil {
			r := replayDurability(*recovery)
			d.Recovered = true
			d.RecordsReplayed = r.RecordsReplayed
			d.ReplayedSectors = r.ReplayedSectors
			d.TornTail = r.TornTail
			d.FromCheckpoint = r.FromCheckpoint
		}
		fmt.Fprintln(out)
		if err := report.DurabilityTable(d).Render(out); err != nil {
			return err
		}
	}
	if col != nil && obs.hist {
		snap := col.Snapshot()
		for _, h := range snap.Hists() {
			if h.Total == 0 {
				continue
			}
			fmt.Fprintln(out)
			if err := report.HistogramTable(h.Name, h.Unit, h.Buckets, h.Total).Render(out); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
		if err := report.CDFTable("seek distance CDF", "sectors", snap.SeekDistance.CDF()).Render(out); err != nil {
			return err
		}
	}
	if crashed {
		fmt.Fprintf(out, "\nsimulation crashed at the injected crash point after %s journal appends; run again with -recover to replay the journal\n",
			report.HumanCount(st.Durability.JournalAppends))
	}
	return nil
}
