package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// Request describes one operation for AsyncClient.Submit. Extent is
// used by write/read, Seq by proof, Gen/Off by ship/tail/ack; the rest
// ignore them — the same shape the wire request carries.
type Request struct {
	Op     uint8
	Volume string
	Extent geom.Extent
	Seq    int64
	Gen    uint64
	Off    int64
}

func (r Request) wire() request {
	return request{Op: r.Op, Volume: r.Volume, Extent: r.Extent, Seq: r.Seq, Gen: r.Gen, Off: r.Off}
}

// ErrClientClosed is returned by Submit on a closed AsyncClient.
var ErrClientClosed = errors.New("smrd: client closed")

// Call is one in-flight pipelined request. The AsyncClient delivers the
// completed Call on the done channel passed to Submit; read the outcome
// with Result (or the typed helpers on AsyncClient).
type Call struct {
	// ID is the request's wire ID, unique per connection.
	ID uint64
	// Op is the request opcode, echoed for the caller's dispatch.
	Op uint8

	status uint8
	body   []byte
	err    error
	done   chan *Call
}

// Result returns the call's response body, mapping transport failures
// and non-OK statuses to errors exactly like the synchronous client:
// *StatusError for server rejections, a connection error otherwise.
// Valid only after the Call was delivered on its done channel.
func (c *Call) Result() ([]byte, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.status != StatusOK {
		return nil, &StatusError{Status: c.status, Msg: string(c.body)}
	}
	return c.body, nil
}

// AsyncClient is one pipelined smrd connection: up to the negotiated
// window of requests in flight, responses matched by ID and completed
// out of order. Safe for concurrent use — any number of goroutines may
// Submit; each Call comes back on the done channel its submitter chose
// (the volume.TryDo idiom: the channel must be buffered with room for
// every call outstanding on it).
//
// Negotiated against a v1 server the client degrades transparently:
// no IDs on the wire, window forced to 1, strict request/response order.
type AsyncClient struct {
	addr    string
	conn    net.Conn
	version uint8
	window  int

	// slots holds one token per window seat; Submit acquires before
	// registering, completion releases. Capacity bounds the pipeline.
	slots  chan struct{}
	broken chan struct{} // closed on the first transport failure

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*Call
	err     error // sticky transport failure
	closed  bool

	wmu sync.Mutex // serializes concurrent senders
	out []byte     // request encode scratch, guarded by wmu

	readerDone chan struct{}
}

// DialAsync connects with the SMRD2 protocol, requesting the given
// window (0 = server default). The granted window — possibly clamped by
// the server — is available via Window.
func DialAsync(addr string, window int) (*AsyncClient, error) {
	return DialAsyncContext(context.Background(), addr, Version2, window)
}

// DialAsyncContext is DialAsync with caller-controlled cancellation and
// an explicit protocol version ceiling (Version forces the legacy
// synchronous wire format; the window is then 1 regardless of the
// request).
func DialAsyncContext(ctx context.Context, addr string, version uint8, window int) (*AsyncClient, error) {
	conn, err := dialRetry(ctx, addr)
	if err != nil {
		return nil, err
	}
	ac, err := newAsyncClient(conn, addr, version, window)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return ac, nil
}

// dialRetry dials addr, retrying refused connections briefly (the daemon
// may still be binding its listener).
func dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	var (
		d    net.Dialer
		conn net.Conn
		err  error
	)
	for attempt := 0; attempt < 20; attempt++ {
		conn, err = d.DialContext(ctx, "tcp", addr)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(25 * time.Millisecond):
		}
	}
	if err != nil {
		return nil, fmt.Errorf("smrd: dial %s: %w", addr, err)
	}
	return conn, nil
}

// newAsyncClient performs the hello on an established connection and
// starts the response reader.
func newAsyncClient(conn net.Conn, addr string, version uint8, window int) (*AsyncClient, error) {
	negVersion, negWindow, err := clientHello(conn, version, window)
	if err != nil {
		return nil, err
	}
	ac := &AsyncClient{
		addr:       addr,
		conn:       conn,
		version:    negVersion,
		window:     negWindow,
		slots:      make(chan struct{}, negWindow),
		broken:     make(chan struct{}),
		pending:    make(map[uint64]*Call, negWindow),
		readerDone: make(chan struct{}),
	}
	go ac.reader()
	return ac, nil
}

// Version returns the negotiated protocol version.
func (ac *AsyncClient) Version() uint8 { return ac.version }

// Window returns the granted in-flight window.
func (ac *AsyncClient) Window() int { return ac.window }

// Close closes the connection; every in-flight call completes with a
// connection error.
func (ac *AsyncClient) Close() error {
	ac.mu.Lock()
	ac.closed = true
	ac.mu.Unlock()
	err := ac.conn.Close()
	<-ac.readerDone
	return err
}

// Submit sends one request into the pipeline, blocking only while the
// window is full. The Call is delivered on done when its response
// arrives (or the connection fails). done must be buffered with
// capacity for every call outstanding on it — the delivery never
// blocks, matching the volume.TryDo contract.
func (ac *AsyncClient) Submit(req Request, done chan *Call) (*Call, error) {
	return ac.submit(req.wire(), done)
}

// Await blocks for the next completed Call on done — sugar for the
// channel receive, so Submit/Await pairs read naturally.
func (ac *AsyncClient) Await(done chan *Call) *Call { return <-done }

// SubmitStep submits one trace record as the matching read/write.
func (ac *AsyncClient) SubmitStep(vol string, rec trace.Record, done chan *Call) (*Call, error) {
	switch rec.Kind {
	case disk.Write:
		return ac.submit(request{Op: OpWrite, Volume: vol, Extent: rec.Extent}, done)
	case disk.Read:
		return ac.submit(request{Op: OpRead, Volume: vol, Extent: rec.Extent}, done)
	default:
		return nil, fmt.Errorf("smrd: unsupported record kind %v", rec.Kind)
	}
}

func (ac *AsyncClient) submit(req request, done chan *Call) (*Call, error) {
	if done == nil || cap(done) == 0 {
		return nil, errors.New("smrd: Submit requires a buffered done channel")
	}
	select {
	case ac.slots <- struct{}{}:
	case <-ac.broken:
		return nil, ac.stickyErr()
	}
	ac.mu.Lock()
	if ac.err != nil || ac.closed {
		err := ac.err
		ac.mu.Unlock()
		<-ac.slots
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	ac.nextID++
	call := &Call{ID: ac.nextID, Op: req.Op, done: done}
	ac.pending[call.ID] = call
	ac.mu.Unlock()

	ac.wmu.Lock()
	var err error
	if ac.version >= Version2 {
		ac.out, err = appendRequestV2(ac.out[:0], call.ID, req)
	} else {
		ac.out, err = appendRequest(ac.out[:0], req)
	}
	if err != nil {
		// Encode failure (caller error, nothing hit the wire): unwind.
		ac.wmu.Unlock()
		ac.mu.Lock()
		delete(ac.pending, call.ID)
		ac.mu.Unlock()
		<-ac.slots
		return nil, err
	}
	_, werr := ac.conn.Write(ac.out)
	ac.wmu.Unlock()
	if werr != nil {
		// The connection is gone: fail every pending call (including this
		// one) — each is delivered on its done channel with the error.
		ac.fail(&connError{fmt.Errorf("smrd: send: %w", werr)})
	}
	return call, nil
}

// reader is the connection's single response-reading goroutine.
func (ac *AsyncClient) reader() {
	defer close(ac.readerDone)
	var buf []byte
	for {
		frame, err := readFrame(ac.conn, buf)
		if err != nil {
			ac.fail(&connError{fmt.Errorf("smrd: recv: %w", err)})
			return
		}
		buf = frame
		var (
			id     uint64
			status uint8
			body   []byte
		)
		if ac.version >= Version2 {
			id, status, body, err = parseResponseV2(frame)
			if err != nil {
				ac.fail(&connError{err})
				return
			}
		} else {
			status, body = frame[0], frame[1:]
		}
		ac.mu.Lock()
		var call *Call
		if ac.version >= Version2 {
			call = ac.pending[id]
			delete(ac.pending, id)
		} else {
			// v1 responses arrive strictly in request order and the window
			// is 1: the sole pending call is the match.
			for k, v := range ac.pending {
				call = v
				delete(ac.pending, k)
				break
			}
		}
		ac.mu.Unlock()
		if call == nil {
			ac.fail(&connError{fmt.Errorf("smrd: response for unknown request id %d", id)})
			return
		}
		call.status = status
		if len(body) > 0 {
			// Copy out of the read scratch: the next frame reuses it.
			call.body = append([]byte(nil), body...)
		}
		<-ac.slots
		call.done <- call
	}
}

// fail marks the client broken and completes every pending call with
// err. Idempotent; safe from the reader and from a failed sender.
func (ac *AsyncClient) fail(err error) {
	ac.mu.Lock()
	if ac.err == nil {
		ac.err = err
		close(ac.broken)
	}
	calls := make([]*Call, 0, len(ac.pending))
	for id, call := range ac.pending {
		calls = append(calls, call)
		delete(ac.pending, id)
	}
	ac.mu.Unlock()
	for _, call := range calls {
		call.err = err
		<-ac.slots
		call.done <- call
	}
}

// stickyErr returns the recorded transport failure (or ErrClientClosed).
func (ac *AsyncClient) stickyErr() error {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if ac.err != nil {
		return ac.err
	}
	return ErrClientClosed
}

// roundTrip submits one request and blocks for its response — the
// synchronous convenience path over the pipeline.
func (ac *AsyncClient) roundTrip(req request) ([]byte, error) {
	done := make(chan *Call, 1)
	call, err := ac.submit(req, done)
	if err != nil {
		return nil, err
	}
	_ = call
	return (<-done).Result()
}

// Replay streams every record of r to the named volume, keeping the
// negotiated window full, and returns how many completed successfully.
// Requests are sent — and therefore dispatched to the volume — in trace
// order; only the responses interleave. With a window no larger than
// the volume's queue depth and no competing writers, a pipelined replay
// is exactly as deterministic as a synchronous one. The first error
// (including ErrOverloaded shedding — the caller owns retries) stops
// the stream after draining what is in flight.
func (ac *AsyncClient) Replay(vol string, r trace.Reader) (int64, error) {
	done := make(chan *Call, ac.window)
	var (
		n, inflight int64
		firstErr    error
	)
	reap := func(call *Call) {
		inflight--
		if _, err := call.Result(); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			n++
		}
	}
	for firstErr == nil {
		rec, ok := r.Next()
		if !ok {
			break
		}
	drain:
		for {
			select {
			case call := <-done:
				reap(call)
			default:
				break drain
			}
		}
		if firstErr != nil {
			break
		}
		if _, err := ac.SubmitStep(vol, rec, done); err != nil {
			firstErr = err
			break
		}
		inflight++
	}
	for inflight > 0 {
		reap(<-done)
	}
	if firstErr != nil {
		return n, firstErr
	}
	return n, r.Err()
}
