package journal

import (
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// workerMatrix is the worker counts every differential test sweeps: the
// inline path, minimal real concurrency, and heavy oversubscription
// (far more workers than this box has cores).
var workerMatrix = []int{1, 2, 8}

// scansEqual asserts ScanBytesWorkers(raw, workers) is bit-identical to
// the sequential scanner: same Data, same error — CorruptError compared
// field by field, anything else by message.
func scansEqual(t *testing.T, raw []byte, workers int, label string) {
	t.Helper()
	want, werr := scanJournal(raw)
	got, gerr := ScanBytesWorkers(raw, workers)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s workers=%d: Data diverges:\nseq: %+v\npar: %+v", label, workers, want, got)
	}
	if !errorsIdentical(werr, gerr) {
		t.Fatalf("%s workers=%d: error diverges:\nseq: %v\npar: %v", label, workers, werr, gerr)
	}
}

func errorsIdentical(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	var ca, cb *CorruptError
	aIs, bIs := errors.As(a, &ca), errors.As(b, &cb)
	if aIs != bIs {
		return false
	}
	if aIs {
		return *ca == *cb
	}
	return a.Error() == b.Error()
}

// sealedWithTail builds a journal with nSeals sealed segments plus tail
// extra unsealed records, returning the journal and checkpoint bytes.
func sealedWithTail(t *testing.T, nSeals, tail int) (jraw, craw []byte) {
	t.Helper()
	dir := t.TempDir()
	l := buildSealedPair(t, dir, nSeals)
	var pba int64 = int64(4 + 8*nSeals)
	for i := 0; i < tail; i++ {
		if err := l.Append(rec(RecWrite, pba, 4, pba)); err != nil {
			t.Fatal(err)
		}
		pba += 4
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	jraw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	craw, err = os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	return jraw, craw
}

// TestParallelScanDifferentialFlips flips every byte of a sealed
// journal (header, records, seals, unsealed tail) one at a time and
// asserts the parallel scan is bit-identical to the sequential one at
// every worker count: same records, same seals, same torn-vs-corrupt
// verdict, same CorruptError file/segment/offset/reason.
func TestParallelScanDifferentialFlips(t *testing.T) {
	jraw, _ := sealedWithTail(t, 3, 1)
	for _, w := range workerMatrix {
		scansEqual(t, jraw, w, "pristine")
	}
	for i := range jraw {
		mut := mutate(jraw, i, 0xff)
		for _, w := range workerMatrix {
			scansEqual(t, mut, w, "flip")
		}
	}
}

// TestParallelScanDifferentialTruncation cuts the journal to every
// possible length — torn headers, torn frames, torn seals — and asserts
// parity at every worker count.
func TestParallelScanDifferentialTruncation(t *testing.T) {
	jraw, _ := sealedWithTail(t, 3, 1)
	for cut := 0; cut <= len(jraw); cut++ {
		for _, w := range workerMatrix {
			scansEqual(t, jraw[:cut], w, "cut")
		}
	}
}

// TestParallelScanDifferentialDoubleDamage damages two widely separated
// segments at once: with many workers both damages are found
// concurrently, and the lowest-offset one must win deterministically —
// the applier consumes results in job order, so which worker finished
// first is irrelevant.
func TestParallelScanDifferentialDoubleDamage(t *testing.T) {
	jraw, _ := sealedWithTail(t, 6, 0)
	d, err := scanJournal(jraw)
	if err != nil || len(d.Seals) != 6 {
		t.Fatalf("pristine journal: %v, %d seals", err, len(d.Seals))
	}
	// A record byte inside segment 0 and one inside segment 4.
	early := int(d.Seals[0].Offset) - frameSize + 10
	late := int(d.Seals[4].Offset) - frameSize + 10
	mut := mutate(mutate(jraw, late, 0x5a), early, 0x5a)

	wantD, wantErr := scanJournal(mut)
	var ce *CorruptError
	if !errors.As(wantErr, &ce) {
		t.Fatalf("sequential scan of double damage: %v, want CorruptError", wantErr)
	}
	if want := d.Seals[0].Offset - frameSize; ce.Offset != want {
		t.Fatalf("sequential first error at offset %d, want %d (the damaged frame in segment 0)", ce.Offset, want)
	}
	// Many repetitions: worker completion order varies run to run, the
	// result must not.
	for run := 0; run < 25; run++ {
		got, gerr := ScanBytesWorkers(mut, 8)
		if !reflect.DeepEqual(wantD, got) || !errorsIdentical(wantErr, gerr) {
			t.Fatalf("run %d: double-damage scan diverged: %+v / %v, want %+v / %v",
				run, got, gerr, wantD, wantErr)
		}
	}
}

// TestVerifyDirWorkersAuditIdentical runs the full directory audit at
// every worker count over clean, corrupt, torn-truncated and stale
// inputs, asserting the Audit JSON (the wire/CLI surface) and the error
// are identical to the sequential audit.
func TestVerifyDirWorkersAuditIdentical(t *testing.T) {
	jraw, craw := sealedWithTail(t, 3, 1)
	cases := map[string]string{
		"clean":     writePair(t, jraw, craw),
		"corrupt":   writePair(t, mutate(jraw, headerSize+10, 0xff), craw),
		"torn":      writePair(t, jraw[:len(jraw)-20], craw),
		"no-ckpt":   writePair(t, jraw, nil),
		"ckpt-only": writePair(t, nil, craw),
	}
	for name, dir := range cases {
		want, werr := VerifyDirWorkers(dir, 1)
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerMatrix {
			got, gerr := VerifyDirWorkers(dir, w)
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(wantJSON) != string(gotJSON) {
				t.Fatalf("%s workers=%d: audit diverges:\nseq: %s\npar: %s", name, w, wantJSON, gotJSON)
			}
			if !errorsIdentical(werr, gerr) {
				t.Fatalf("%s workers=%d: error diverges: %v vs %v", name, w, werr, gerr)
			}
		}
	}
}

// TestParallelScanLeavesMatchProve checks the leaf hashes the parallel
// scan hands back (the ones Open installs for Prove) against a freshly
// recomputed per-record hash, and that proofs built from them verify.
func TestParallelScanLeavesMatchProve(t *testing.T) {
	dir := t.TempDir()
	l := buildSealedPair(t, dir, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	d, leaves, err := scanJournalParallel(raw, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != len(d.Records) {
		t.Fatalf("%d leaves for %d records", len(leaves), len(d.Records))
	}
	for i, r := range d.Records {
		frame := MarshalRecord(r)
		if want := LeafHash(frame[4 : 4+payloadSize]); leaves[i] != want {
			t.Fatalf("leaf %d: %s, want %s", i, leaves[i].Short(), want.Short())
		}
	}
	// And the reopened log proves every sealed record with those leaves.
	l2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for seq := int64(1); seq <= d.Sealed; seq++ {
		p, err := l2.Prove(seq)
		if err != nil {
			t.Fatalf("prove %d: %v", seq, err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("proof %d does not verify: %v", seq, err)
		}
	}
}

// TestParallelScanSpeedup is the perf acceptance gate: on a machine
// with at least 4 cores, the parallel scan of a large sealed journal
// must be at least 2x faster than the sequential one. Skipped on
// smaller machines (including single-core CI boxes), where the
// differential tests above still pin correctness.
func TestParallelScanSpeedup(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("GOMAXPROCS=%d, speedup gate needs >= 4 cores", procs)
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	// A journal big enough that verification cost (SHA-256 per record,
	// Merkle root per segment) dwarfs pipeline overhead.
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetSegmentSize(512); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if err := l.Append(rec(RecWrite, int64(i)%100000*8, 8, int64(i)*8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	timeScan := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for run := 0; run < 3; run++ {
			start := time.Now()
			if _, err := ScanBytesWorkers(raw, workers); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	seq := timeScan(1)
	par := timeScan(procs)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel(%d) %v: %.2fx", seq, procs, par, speedup)
	if speedup < 2 {
		t.Errorf("parallel scan speedup %.2fx at %d workers, want >= 2x", speedup, procs)
	}
}

// TestScanBytesWorkersDefaults covers the workers<=0 path (GOMAXPROCS)
// and worker counts far beyond the job count.
func TestScanBytesWorkersDefaults(t *testing.T) {
	jraw, _ := sealedWithTail(t, 2, 1)
	for _, w := range []int{0, -1, 64} {
		scansEqual(t, jraw, w, "defaults")
	}
}
