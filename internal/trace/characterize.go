package trace

import (
	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// Characteristics summarizes a trace the way the paper's Table I does:
// operation counts, transferred volumes and mean write size, plus the
// extras (footprint, max LBA) the simulator needs.
type Characteristics struct {
	ReadCount  int64
	WriteCount int64

	ReadBytes    int64
	WrittenBytes int64

	// MeanWriteKB is the mean write size in kilobytes (Table I's "mean
	// write size" column).
	MeanWriteKB float64
	// MeanReadKB is the mean read size in kilobytes.
	MeanReadKB float64

	// MaxLBA is the highest end sector touched; the LS write frontier
	// starts here.
	MaxLBA geom.Sector

	// Ops is the total operation count.
	Ops int64
}

// ReadGB and WrittenGB convert volumes to the paper's GB units.
func (c Characteristics) ReadGB() float64 { return float64(c.ReadBytes) / 1e9 }

// WrittenGB returns the written volume in GB.
func (c Characteristics) WrittenGB() float64 { return float64(c.WrittenBytes) / 1e9 }

// WriteIntensity returns the fraction of operations that are writes. The
// paper observes that write-intensive workloads tend to benefit from
// log-structuring (SAF < 1) while read-intensive ones suffer.
func (c Characteristics) WriteIntensity() float64 {
	if c.Ops == 0 {
		return 0
	}
	return float64(c.WriteCount) / float64(c.Ops)
}

// Characterize computes Table-I style statistics for a record slice.
func Characterize(recs []Record) Characteristics {
	var c Characteristics
	for _, r := range recs {
		bytes := r.Extent.Bytes()
		switch r.Kind {
		case disk.Read:
			c.ReadCount++
			c.ReadBytes += bytes
		case disk.Write:
			c.WriteCount++
			c.WrittenBytes += bytes
		}
		if e := r.Extent.End(); e > c.MaxLBA {
			c.MaxLBA = e
		}
	}
	c.Ops = c.ReadCount + c.WriteCount
	if c.WriteCount > 0 {
		c.MeanWriteKB = float64(c.WrittenBytes) / float64(c.WriteCount) / 1024
	}
	if c.ReadCount > 0 {
		c.MeanReadKB = float64(c.ReadBytes) / float64(c.ReadCount) / 1024
	}
	return c
}
