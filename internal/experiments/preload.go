package experiments

import (
	"sync"

	"smrseek/internal/trace"
	"smrseek/internal/workload"
)

// preloadKey identifies one generated workload arena: the same profile
// at the same scale always yields the same records (generation is
// seeded), so the records are shared, not regenerated.
type preloadKey struct {
	name  string
	scale float64
}

// preloadCache memoizes workload arenas for the life of the process. An
// "all" run touches most catalog workloads from several figures; without
// the cache each figure regenerates (and rescans for MaxLBA) the same
// multi-hundred-thousand-record traces.
var preloadCache sync.Map // preloadKey -> *preloadEntry

type preloadEntry struct {
	once sync.Once
	p    *trace.Preloaded
}

// preloaded returns the workload's records at the given scale as a
// shared read-only arena, generating them at most once per process. The
// LoadOrStore + Once pairing makes it race-safe under the parallel
// figure runners without ever generating a trace twice.
func preloaded(p workload.Profile, scale float64) *trace.Preloaded {
	v, _ := preloadCache.LoadOrStore(preloadKey{name: p.Name, scale: scale}, &preloadEntry{})
	e := v.(*preloadEntry)
	e.once.Do(func() { e.p = trace.PreloadRecords(p.Generate(scale)) })
	return e.p
}
