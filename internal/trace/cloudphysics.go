package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// The CloudPhysics traces used by the paper (Waldspurger et al., FAST '15)
// were never published in a documented format, so we define a simple CSV
// schema for interchange and use it for both parsing and emission:
//
//	# smrseek cloudphysics v1
//	time_ns,op,lba,sectors
//
// where op is "R" or "W", lba and sectors are 512-byte sector units.
// Lines starting with '#' are comments.

// CPHeader is the header comment emitted at the top of CloudPhysics-style
// trace files.
const CPHeader = "# smrseek cloudphysics v1"

// CPReader parses the CloudPhysics-style CSV defined above.
type CPReader struct {
	s    *lineScanner
	err  error
	line int
}

// NewCPReader returns a reader over CloudPhysics-style CSV input.
func NewCPReader(r io.Reader) *CPReader {
	return &CPReader{s: newLineScanner(r)}
}

// Next implements Reader.
func (c *CPReader) Next() (Record, bool) {
	if c.err != nil {
		return Record{}, false
	}
	for c.s.Scan() {
		c.line++
		line := strings.TrimSpace(c.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseCPLine(line)
		if err != nil {
			c.err = fmt.Errorf("cloudphysics trace line %d: %w", c.line, err)
			return Record{}, false
		}
		if rec.Extent.Empty() {
			continue
		}
		return rec, true
	}
	// A scanner failure (an over-long line, a read error) happens after
	// the last counted line; report the position like parse errors do.
	if err := c.s.Err(); err != nil {
		c.err = fmt.Errorf("cloudphysics trace line %d: %w", c.line+1, err)
	}
	return Record{}, false
}

func parseCPLine(line string) (Record, error) {
	f := strings.Split(line, ",")
	if len(f) != 4 {
		return Record{}, fmt.Errorf("want 4 fields, got %d", len(f))
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("time: %w", err)
	}
	var kind disk.OpKind
	switch strings.TrimSpace(f[1]) {
	case "R", "r":
		kind = disk.Read
	case "W", "w":
		kind = disk.Write
	default:
		return Record{}, fmt.Errorf("unknown op %q", f[1])
	}
	lba, err := strconv.ParseInt(strings.TrimSpace(f[2]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("lba: %w", err)
	}
	n, err := strconv.ParseInt(strings.TrimSpace(f[3]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("sectors: %w", err)
	}
	if lba < 0 || n < 0 {
		return Record{}, fmt.Errorf("negative lba/sectors (%d/%d)", lba, n)
	}
	if n > 0 && lba > math.MaxInt64-n {
		return Record{}, fmt.Errorf("extent %d+%d overflows", lba, n)
	}
	return Record{Time: ts, Kind: kind, Extent: geom.Ext(lba, n)}, nil
}

// Err implements Reader.
func (c *CPReader) Err() error { return c.err }

// WriteCP writes records in the CloudPhysics-style CSV schema.
func WriteCP(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, CPHeader); err != nil {
		return err
	}
	for _, r := range recs {
		op := "R"
		if r.Kind == disk.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", r.Time, op, r.Extent.Start, r.Extent.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}
