// Command smrload drives a running smrd daemon with a trace replayed
// over N concurrent connections, optionally throttled to a target QPS,
// and reports throughput, shed (overloaded) counts and latency
// percentiles measured at the client.
//
// Examples:
//
//	smrload -addr 127.0.0.1:4590 -volumes a,b -workload w91 -conns 8
//	smrload -addr 127.0.0.1:4590 -volumes a -trace t.csv -format cp -qps 5000
//
// Each connection replays the full trace in order against one volume
// (connections round-robin over -volumes), so with -conns equal to the
// volume count every volume sees exactly the trace the simulator would
// see in a direct run. Overloaded responses are counted as sheds and
// the record is retried, so backpressure shows up as latency + shed
// count, not as lost trace records.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"smrseek"
	"smrseek/internal/metrics"
	"smrseek/internal/report"
	"smrseek/internal/server"
	"smrseek/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smrload:", err)
		os.Exit(1)
	}
}

// tally aggregates results across connections. Latencies are observed
// in microseconds so the log2 histogram buckets resolve sub-millisecond
// behavior.
type tally struct {
	mu        sync.Mutex
	lat       *metrics.Histogram
	ops       int64
	sheds     int64
	failovers int64
	recov     []time.Duration // per-failover time-to-recovery
}

func (t *tally) observe(d time.Duration, sheds int64) {
	t.mu.Lock()
	t.lat.Observe(d.Microseconds())
	t.ops++
	t.sheds += sheds
	t.mu.Unlock()
}

func (t *tally) observeFailovers(n int64, recov []time.Duration) {
	t.mu.Lock()
	t.failovers += n
	t.recov = append(t.recov, recov...)
	t.mu.Unlock()
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smrload", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:4590", "smrd daemon address")
		addrsFlag    = fs.String("addrs", "", "comma-separated replica-set addresses; overrides -addr with failover-aware routing (ops follow the primary, a dead one triggers follower promotion)")
		volumes      = fs.String("volumes", "v0", "comma-separated volume names; connections round-robin over them")
		workloadName = fs.String("workload", "w91", "named synthetic workload to replay (see traceinfo -list)")
		scale        = fs.Float64("scale", 0.05, "workload scale")
		tracePath    = fs.String("trace", "", "trace file to replay instead of a named workload")
		format       = fs.String("format", "cp", `trace format: "msr" or "cp"`)
		diskNum      = fs.Int("disk", -1, "MSR disk number filter (-1 = all)")
		conns        = fs.Int("conns", 4, "concurrent connections")
		qps          = fs.Float64("qps", 0, "aggregate target ops/sec across all connections (0 = unthrottled)")
		maxRetries   = fs.Int("max-retries", 1000, "per-record retry budget when the server sheds with overloaded")
		pipeline     = fs.Bool("pipeline", false, "use the SMRD2 pipelined client: keep a full window of requests in flight per connection")
		window       = fs.Int("window", 0, "pipelined in-flight window per connection (0 = server default; implies -pipeline)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *conns < 1 {
		return fmt.Errorf("-conns must be >= 1")
	}
	if *window < 0 {
		return fmt.Errorf("-window must be >= 0")
	}
	if *window > 0 {
		*pipeline = true
	}
	vols := strings.Split(*volumes, ",")
	for i := range vols {
		if vols[i] = strings.TrimSpace(vols[i]); vols[i] == "" {
			return fmt.Errorf("empty volume name in -volumes %q", *volumes)
		}
	}

	var replicaSet []string
	target := *addr
	if *addrsFlag != "" {
		for _, a := range strings.Split(*addrsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				replicaSet = append(replicaSet, a)
			}
		}
		target = strings.Join(replicaSet, "|")
	}

	pre, name, err := loadTrace(*workloadName, *scale, *tracePath, *format, *diskNum)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "smrload: replaying %s (%s records) to %s over %d conns",
		name, report.HumanCount(int64(pre.Len())), target, *conns)
	if *qps > 0 {
		fmt.Fprintf(out, " at %.0f qps", *qps)
	}
	if *pipeline {
		if *window > 0 {
			fmt.Fprintf(out, " pipelined (window %d)", *window)
		} else {
			fmt.Fprint(out, " pipelined")
		}
	}
	fmt.Fprintln(out)

	// Pace each connection so the aggregate hits -qps.
	var interval time.Duration
	if *qps > 0 {
		interval = time.Duration(float64(*conns) / *qps * float64(time.Second))
	}

	agg := &tally{lat: metrics.NewHistogram()}
	errs := make(chan error, *conns)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(vol string) {
			defer wg.Done()
			if *pipeline {
				errs <- drivePipelined(*addr, replicaSet, vol, pre, agg, interval, *maxRetries, *window)
			} else {
				errs <- drive(*addr, replicaSet, vol, pre, agg, interval, *maxRetries)
			}
		}(vols[i%len(vols)])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return render(out, agg, elapsed)
}

// stepper is what drive needs from a connection: a single-address
// Client or a failover-aware replica Set.
type stepper interface {
	Step(vol string, rec trace.Record) (int, error)
	Close() error
}

// drive replays the whole trace on one connection, pacing ops to
// interval and retrying shed records. With a replica set, a dead or
// demoted primary triggers client-side failover (promoting a follower
// if needed) and the interrupted record is resent.
func drive(addr string, replicaSet []string, vol string, pre *trace.Preloaded, agg *tally, interval time.Duration, maxRetries int) error {
	var c stepper
	if len(replicaSet) > 0 {
		set, err := server.DialSet(context.Background(), replicaSet)
		if err != nil {
			return err
		}
		defer func() { agg.observeFailovers(set.Failovers(), set.Recoveries()) }()
		c = set
	} else {
		cl, err := server.Dial(addr)
		if err != nil {
			return err
		}
		c = cl
	}
	defer c.Close()
	var next time.Time
	if interval > 0 {
		next = time.Now()
	}
	r := pre.NewReader()
	for {
		rec, ok := r.Next()
		if !ok {
			return r.Err()
		}
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		var sheds int64
		opStart := time.Now()
		for {
			_, err := c.Step(vol, rec)
			if err == nil {
				break
			}
			if !server.IsOverloaded(err) {
				return fmt.Errorf("volume %s: %w", vol, err)
			}
			if sheds++; sheds > int64(maxRetries) {
				return fmt.Errorf("volume %s: record shed %d times, giving up", vol, maxRetries)
			}
			time.Sleep(time.Millisecond)
		}
		agg.observe(time.Since(opStart), sheds)
	}
}

func render(out io.Writer, agg *tally, elapsed time.Duration) error {
	agg.mu.Lock()
	defer agg.mu.Unlock()
	tput := float64(agg.ops) / elapsed.Seconds()
	var maxRecov time.Duration
	for _, r := range agg.recov {
		if r > maxRecov {
			maxRecov = r
		}
	}
	ttr := "-"
	if agg.failovers > 0 {
		ttr = maxRecov.Round(time.Millisecond).String()
	}
	tbl := report.NewTable("load summary",
		"ops", "elapsed", "throughput", "sheds", "failovers", "ttr max", "p50 µs", "p95 µs", "p99 µs")
	tbl.AddRow(
		report.HumanCount(agg.ops),
		elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f ops/s", tput),
		report.HumanCount(agg.sheds),
		report.HumanCount(agg.failovers),
		ttr,
		agg.lat.Quantile(0.50),
		agg.lat.Quantile(0.95),
		agg.lat.Quantile(0.99),
	)
	return tbl.Render(out)
}

// loadTrace preloads the requested records once; every connection
// replays the shared arena through its own cursor.
func loadTrace(workload string, scale float64, path, format string, diskNum int) (*trace.Preloaded, string, error) {
	if path == "" {
		p, err := smrseek.Workload(workload)
		if err != nil {
			return nil, "", err
		}
		return trace.PreloadRecords(p.Generate(scale)), workload, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var r trace.Reader
	switch format {
	case "msr":
		r = trace.NewMSRReader(f, diskNum)
	case "cp":
		r = trace.NewCPReader(f)
	case "bin":
		r = trace.NewBinaryReader(f)
	default:
		return nil, "", fmt.Errorf("unknown trace format %q", format)
	}
	pre, err := trace.Preload(r)
	if err != nil {
		return nil, "", err
	}
	return pre, path, nil
}
