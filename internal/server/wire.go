// Package server exposes a volume.Manager over TCP with a compact
// length-prefixed binary protocol (read/write/stat/snapshot per volume),
// and provides the matching client library used by cmd/smrload and the
// end-to-end tests. The record layout is documented in docs/FORMATS.md.
//
// Two protocol versions share the framing. SMRD v1 is synchronous: one
// request frame, one response frame, in order — per-volume ordering is
// exactly the per-connection send order. SMRD2 multiplexes: every frame
// carries a uint64 request ID, a client may keep up to a negotiated
// window of requests in flight per connection, and responses complete
// out of order (matched by ID). Requests from one connection are still
// dispatched to the volume actor in send order, so a single v2
// connection replaying a trace remains bit-deterministic; only the
// responses are reordered. Version and window are negotiated in the
// hello, and a v2 server accepts v1 clients unchanged.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"smrseek/internal/geom"
	"smrseek/internal/journal"
)

// Protocol constants.
const (
	// Magic + version exchanged once per connection, client first.
	Magic   = "SMRD"
	Version = 1
	// Version2 is the multiplexed SMRD2 protocol: id-stamped frames,
	// windowed pipelining, out-of-order completion.
	Version2 = 2

	// MaxFrame bounds a frame's post-length payload; stat responses
	// (JSON statistics) are the largest legitimate frames.
	MaxFrame = 1 << 20

	// MaxVolumeName bounds the volume-name field (its length is a uint8).
	MaxVolumeName = 255

	// DefaultWindow is the per-connection in-flight window granted to a
	// v2 client that requests 0 ("server default").
	DefaultWindow = 32
	// DefaultMaxWindow caps the window a server grants unless
	// Options.MaxWindow overrides it.
	DefaultMaxWindow = 256
	// HardMaxWindow bounds any negotiated window: it also sizes the
	// per-connection completion channel, so it must stay moderate.
	HardMaxWindow = 1 << 14
)

// Request opcodes (first payload byte of a request frame).
const (
	OpWrite uint8 = iota + 1
	OpRead
	OpStat
	OpSnapshot
	OpVerify
	OpProof
	// OpShip asks a primary for the next replication chunk of a volume's
	// journal past the requester's (generation, offset) position.
	OpShip
	// OpTail is OpShip with long-poll semantics: the server holds the
	// request until sealed bytes exist past the requester's position (a
	// force-seal is triggered for a lagging tail) or a bounded wait ends.
	OpTail
	// OpAck reports a follower's applied journal position so the primary
	// can track replication lag and release gated writes.
	OpAck
	// OpRole asks the node for its replication role, fencing epoch and
	// per-volume journal positions.
	OpRole
	// OpPromote asks a follower to promote itself to primary: verified
	// recovery of every replicated journal, epoch bump, serving enabled.
	OpPromote
)

// Response status codes (first payload byte of a response frame).
const (
	StatusOK uint8 = iota
	StatusOverloaded
	StatusUnknownVolume
	StatusBadRequest
	StatusCrashed
	StatusMediaError
	StatusTransient
	StatusNoJournal
	StatusTimeout
	StatusInternal
	StatusCorrupt
	// StatusNotPrimary rejects a data op on a node that is not the
	// serving primary — an unpromoted follower or a fenced (demoted)
	// ex-primary. Clients re-route; see Set.
	StatusNotPrimary
)

var statusNames = [...]string{
	StatusOK:            "ok",
	StatusOverloaded:    "overloaded",
	StatusUnknownVolume: "unknown-volume",
	StatusBadRequest:    "bad-request",
	StatusCrashed:       "crashed",
	StatusMediaError:    "media-error",
	StatusTransient:     "transient-fault",
	StatusNoJournal:     "no-journal",
	StatusTimeout:       "timeout",
	StatusInternal:      "internal",
	StatusCorrupt:       "corrupt",
	StatusNotPrimary:    "not-primary",
}

// StatusName returns the status code's kebab-case name.
func StatusName(s uint8) string {
	if int(s) < len(statusNames) && statusNames[s] != "" {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", s)
}

// request is one decoded request frame.
type request struct {
	Op     uint8
	Volume string
	Extent geom.Extent // write/read only
	Seq    int64       // proof only: 1-based journal record sequence
	Gen    uint64      // ship/tail/ack only: requester's journal generation
	Off    int64       // ship/tail/ack only: requester's journal byte offset
}

// appendRequest encodes the request into dst's frame format:
//
//	len uint32 LE | op uint8 | vlen uint8 | name | body
//
// where body is `lba uint64 LE, count uint64 LE` for write/read,
// `seq uint64 LE` for proof, `gen uint64 LE, off uint64 LE` for
// ship/tail/ack, and empty otherwise.
func appendRequest(dst []byte, req request) ([]byte, error) {
	body := 2 + len(req.Volume)
	switch req.Op {
	case OpWrite, OpRead, OpShip, OpTail, OpAck:
		body += 16
	case OpProof:
		body += 8
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	return appendRequestPayload(dst, req)
}

// appendRequestPayload encodes the request payload without a length
// prefix (the v2 encoder stamps the ID between prefix and payload).
func appendRequestPayload(dst []byte, req request) ([]byte, error) {
	if len(req.Volume) > MaxVolumeName {
		return dst, fmt.Errorf("server: volume name %d bytes long (max %d)", len(req.Volume), MaxVolumeName)
	}
	dst = append(dst, req.Op, uint8(len(req.Volume)))
	dst = append(dst, req.Volume...)
	switch req.Op {
	case OpWrite, OpRead:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Extent.Start))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Extent.Count))
	case OpProof:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Seq))
	case OpShip, OpTail, OpAck:
		dst = binary.LittleEndian.AppendUint64(dst, req.Gen)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.Off))
	}
	return dst, nil
}

// nameCache interns volume-name strings so the v2 reader's steady state
// allocates nothing per request: the first request for a volume pays one
// string allocation, every later one reuses it. Bounded so a client
// spraying names cannot grow it without limit.
type nameCache map[string]string

const maxCachedNames = 256

func (nc nameCache) intern(b []byte) string {
	if s, ok := nc[string(b)]; ok { // no-alloc map lookup on []byte key
		return s
	}
	s := string(b)
	if nc != nil && len(nc) < maxCachedNames {
		nc[s] = s
	}
	return s
}

// parseRequest decodes a request frame payload (everything after the
// length prefix).
func parseRequest(p []byte) (request, error) { return parseRequestNamed(p, nil) }

// parseRequestNamed is parseRequest with volume names interned through
// names (nil = allocate per call).
func parseRequestNamed(p []byte, names nameCache) (request, error) {
	if len(p) < 2 {
		return request{}, fmt.Errorf("server: request frame %d bytes, want >= 2", len(p))
	}
	req := request{Op: p[0]}
	vlen := int(p[1])
	p = p[2:]
	if len(p) < vlen {
		return request{}, fmt.Errorf("server: request truncated inside volume name")
	}
	req.Volume = names.intern(p[:vlen])
	p = p[vlen:]
	switch req.Op {
	case OpWrite, OpRead:
		if len(p) != 16 {
			return request{}, fmt.Errorf("server: %s body %d bytes, want 16", StatusName(StatusBadRequest), len(p))
		}
		req.Extent = geom.Ext(
			geom.Sector(binary.LittleEndian.Uint64(p[0:8])),
			int64(binary.LittleEndian.Uint64(p[8:16])),
		)
		if req.Extent.Start < 0 || req.Extent.Count < 0 {
			return request{}, fmt.Errorf("server: negative extent %v", req.Extent)
		}
	case OpProof:
		if len(p) != 8 {
			return request{}, fmt.Errorf("server: proof body %d bytes, want 8", len(p))
		}
		req.Seq = int64(binary.LittleEndian.Uint64(p[0:8]))
		if req.Seq < 1 {
			return request{}, fmt.Errorf("server: proof sequence %d, want >= 1", req.Seq)
		}
	case OpShip, OpTail, OpAck:
		if len(p) != 16 {
			return request{}, fmt.Errorf("server: repl body %d bytes, want 16", len(p))
		}
		req.Gen = binary.LittleEndian.Uint64(p[0:8])
		req.Off = int64(binary.LittleEndian.Uint64(p[8:16]))
		if req.Off < 0 {
			return request{}, fmt.Errorf("server: negative repl offset %d", req.Off)
		}
	case OpStat, OpSnapshot, OpVerify, OpRole, OpPromote:
		if len(p) != 0 {
			return request{}, fmt.Errorf("server: op %d carries %d unexpected body bytes", req.Op, len(p))
		}
	default:
		return request{}, fmt.Errorf("server: unknown op %d", req.Op)
	}
	return req, nil
}

// appendResponse encodes a response frame:
//
//	len uint32 LE | status uint8 | body
//
// For StatusOK the body is op-specific (read: frags uint32 LE; stat:
// JSON statistics; write/snapshot: empty). For errors it is a UTF-8
// message.
func appendResponse(dst []byte, status uint8, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(body)))
	dst = append(dst, status)
	return append(dst, body...)
}

// readFrame reads one length-prefixed frame payload into buf (growing it
// as needed) and returns the payload slice.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	// The header is staged in buf rather than a local array: passing a
	// stack array through the io.Reader interface makes it escape, which
	// costs an allocation per frame on the server's hot read loop.
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 {
		return nil, fmt.Errorf("server: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds the %d-byte cap", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("server: truncated frame: %w", err)
	}
	return buf, nil
}

// RoleInfo is the OpRole / OpPromote response body (JSON): the node's
// replication role, fencing epoch, and per-volume journal positions.
type RoleInfo struct {
	// Role is "primary", "follower", or "fenced" (a demoted ex-primary
	// that refuses data ops).
	Role string `json:"role"`
	// Epoch is the fencing epoch: bumped by every promotion, persisted,
	// and compared on rejoin — the higher epoch is the serving primary.
	Epoch uint64 `json:"epoch"`
	// Volumes maps volume names to replication positions. On a primary
	// the position is the sealed extent of the live journal; on a
	// follower it is the verified, applied extent.
	Volumes map[string]ReplPosition `json:"volumes"`
}

// ReplPosition is one volume's journal replication position.
type ReplPosition struct {
	// Gen is the journal generation.
	Gen uint64 `json:"gen"`
	// Bytes is the sealed byte extent within that generation's file.
	Bytes int64 `json:"bytes"`
	// Records is the cumulative sealed-record watermark (primary) or the
	// applied sealed-record count (follower); used with (Gen, Bytes) to
	// rank followers by caught-up-ness.
	Records int64 `json:"records"`
}

// Less orders positions by caught-up-ness: generation first (a newer
// generation subsumes every older one), sealed bytes within it second.
func (p ReplPosition) Less(o ReplPosition) bool {
	if p.Gen != o.Gen {
		return p.Gen < o.Gen
	}
	return p.Bytes < o.Bytes
}

// Ship response body layout (after the status byte):
//
//	kind uint8 | gen uint64 LE | off uint64 LE | epoch uint64 LE | data
//
// kind/gen/off/data are a journal.ShipChunk; epoch is the responding
// primary's fencing epoch, letting a follower detect a demoted source.
const shipRespHeader = 1 + 8 + 8 + 8

// appendShipBody encodes a ship/tail response body.
func appendShipBody(dst []byte, epoch uint64, c journal.ShipChunk) []byte {
	dst = append(dst, c.Kind)
	dst = binary.LittleEndian.AppendUint64(dst, c.Gen)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Off))
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return append(dst, c.Data...)
}

// parseShipBody decodes a ship/tail response body.
func parseShipBody(p []byte) (epoch uint64, c journal.ShipChunk, err error) {
	if len(p) < shipRespHeader {
		return 0, c, fmt.Errorf("server: ship response %d bytes, want >= %d", len(p), shipRespHeader)
	}
	c.Kind = p[0]
	c.Gen = binary.LittleEndian.Uint64(p[1:9])
	c.Off = int64(binary.LittleEndian.Uint64(p[9:17]))
	epoch = binary.LittleEndian.Uint64(p[17:25])
	if c.Off < 0 {
		return 0, c, fmt.Errorf("server: negative ship offset %d", c.Off)
	}
	if len(p) > shipRespHeader {
		c.Data = append([]byte(nil), p[shipRespHeader:]...)
	}
	return epoch, c, nil
}

// handshake is the legacy v1 client hello: write ours, read theirs,
// require version 1 exactly. A v2 server answers it with version 1 and
// serves the connection synchronously, so pre-SMRD2 clients interoperate
// unchanged. Kept for the v1 client path and the raw-frame tests.
func handshake(rw io.ReadWriter) error {
	hello := append([]byte(Magic), Version)
	if _, err := rw.Write(hello); err != nil {
		return err
	}
	var peer [len(Magic) + 1]byte
	if _, err := io.ReadFull(rw, peer[:]); err != nil {
		return fmt.Errorf("server: handshake: %w", err)
	}
	if string(peer[:len(Magic)]) != Magic {
		return fmt.Errorf("server: bad handshake magic %q", peer[:len(Magic)])
	}
	if peer[len(Magic)] != Version {
		return fmt.Errorf("server: protocol version %d, want %d", peer[len(Magic)], Version)
	}
	return nil
}

// clientHello negotiates version and window from the client side. The
// client sends Magic + its highest supported version; a v2 hello is
// followed by a uint16 LE requested window (0 = server default). The
// server answers Magic + negotiated version, plus the granted uint16
// window when v2 was negotiated. The granted window never exceeds the
// request (when the request was non-zero).
func clientHello(rw io.ReadWriter, version uint8, window int) (negVersion uint8, negWindow int, err error) {
	if version < Version || version > Version2 {
		return 0, 0, fmt.Errorf("server: unsupported client version %d", version)
	}
	if window < 0 || window > HardMaxWindow {
		return 0, 0, fmt.Errorf("server: requested window %d out of range [0, %d]", window, HardMaxWindow)
	}
	hello := append([]byte(Magic), version)
	if version >= Version2 {
		hello = binary.LittleEndian.AppendUint16(hello, uint16(window))
	}
	if _, err := rw.Write(hello); err != nil {
		return 0, 0, fmt.Errorf("server: hello: %w", err)
	}
	var peer [len(Magic) + 1]byte
	if _, err := io.ReadFull(rw, peer[:]); err != nil {
		return 0, 0, fmt.Errorf("server: hello: %w", err)
	}
	if string(peer[:len(Magic)]) != Magic {
		return 0, 0, fmt.Errorf("server: bad hello magic %q", peer[:len(Magic)])
	}
	negVersion = peer[len(Magic)]
	if negVersion < Version || negVersion > version {
		return 0, 0, fmt.Errorf("server: negotiated version %d, asked for <= %d", negVersion, version)
	}
	if negVersion < Version2 {
		return negVersion, 1, nil
	}
	var wbuf [2]byte
	if _, err := io.ReadFull(rw, wbuf[:]); err != nil {
		return 0, 0, fmt.Errorf("server: hello window: %w", err)
	}
	negWindow = int(binary.LittleEndian.Uint16(wbuf[:]))
	if negWindow < 1 || (window > 0 && negWindow > window) {
		return 0, 0, fmt.Errorf("server: granted window %d, requested %d", negWindow, window)
	}
	return negVersion, negWindow, nil
}

// serverHello answers a client hello: read the client's version (and
// window request, for v2), clamp both, and reply. maxWindow <= 0 means
// DefaultMaxWindow.
func serverHello(rw io.ReadWriter, maxWindow int) (version uint8, window int, err error) {
	var peer [len(Magic) + 1]byte
	if _, err := io.ReadFull(rw, peer[:]); err != nil {
		return 0, 0, fmt.Errorf("server: hello: %w", err)
	}
	if string(peer[:len(Magic)]) != Magic {
		return 0, 0, fmt.Errorf("server: bad hello magic %q", peer[:len(Magic)])
	}
	version = peer[len(Magic)]
	if version < Version {
		return 0, 0, fmt.Errorf("server: client version %d, want >= %d", version, Version)
	}
	requested := 0
	if version >= Version2 {
		version = Version2 // serve our highest; the client asked for at least it
		var wbuf [2]byte
		if _, err := io.ReadFull(rw, wbuf[:]); err != nil {
			return 0, 0, fmt.Errorf("server: hello window: %w", err)
		}
		requested = int(binary.LittleEndian.Uint16(wbuf[:]))
	}
	window = 1
	if version >= Version2 {
		if maxWindow <= 0 {
			maxWindow = DefaultMaxWindow
		}
		if maxWindow > HardMaxWindow {
			maxWindow = HardMaxWindow
		}
		window = requested
		if window == 0 {
			window = DefaultWindow
		}
		if window > maxWindow {
			window = maxWindow
		}
	}
	reply := append([]byte(Magic), version)
	if version >= Version2 {
		reply = binary.LittleEndian.AppendUint16(reply, uint16(window))
	}
	if _, err := rw.Write(reply); err != nil {
		return 0, 0, fmt.Errorf("server: hello: %w", err)
	}
	return version, window, nil
}

// v2 frame layout: the length-prefixed payload starts with the uint64 LE
// request ID; the rest is exactly the v1 payload (request: op, vlen,
// name, body; response: status, body). Frame boundaries are therefore
// identical across versions — anything that walks frames (the chaos
// proxy, readFrame) is version-agnostic.
const idSize = 8

// appendRequestV2 encodes a v2 request frame: len | id | v1 payload.
func appendRequestV2(dst []byte, id uint64, req request) ([]byte, error) {
	lenAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // patched below
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst, err := appendRequestPayload(dst, req)
	if err != nil {
		return dst[:lenAt], err
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst, nil
}

// parseRequestV2 splits a v2 request payload into its ID and the decoded
// request.
func parseRequestV2(p []byte, names nameCache) (uint64, request, error) {
	if len(p) < idSize+1 {
		return 0, request{}, fmt.Errorf("server: v2 request frame %d bytes, want >= %d", len(p), idSize+1)
	}
	id := binary.LittleEndian.Uint64(p[:idSize])
	req, err := parseRequestNamed(p[idSize:], names)
	return id, req, err
}

// appendResponseV2 encodes a v2 response frame: len | id | status | body.
func appendResponseV2(dst []byte, id uint64, status uint8, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(idSize+1+len(body)))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, status)
	return append(dst, body...)
}

// parseResponseV2 splits a v2 response payload into ID, status and body.
func parseResponseV2(p []byte) (id uint64, status uint8, body []byte, err error) {
	if len(p) < idSize+1 {
		return 0, 0, nil, fmt.Errorf("server: v2 response frame %d bytes, want >= %d", len(p), idSize+1)
	}
	return binary.LittleEndian.Uint64(p[:idSize]), p[idSize], p[idSize+1:], nil
}

// framePool recycles frame buffers between connections and response
// flushes, with get/put accounting so tests can assert no path leaks a
// buffer. Oversized buffers (a huge ship or stat response) are dropped
// on Put rather than pinned in the pool.
type framePoolT struct {
	pool sync.Pool
	gets atomic.Int64
	puts atomic.Int64
}

const maxPooledBuf = MaxFrame

var framePool framePoolT

func (p *framePoolT) Get() []byte {
	p.gets.Add(1)
	if b, ok := p.pool.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	return make([]byte, 0, 4096)
}

func (p *framePoolT) Put(b []byte) {
	p.puts.Add(1)
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}

// Stats returns the pool's cumulative get/put counts; a steady-state
// difference beyond the live connection count is a leak.
func (p *framePoolT) Stats() (gets, puts int64) { return p.gets.Load(), p.puts.Load() }
