// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the design knobs DESIGN.md calls out. Each
// benchmark iteration performs the full experiment at a reduced workload
// scale so `go test -bench=.` completes in minutes; pass
// -benchscale to change it.
package smrseek_test

import (
	"flag"
	"io"
	"testing"

	"smrseek"
)

var benchScale = flag.Float64("benchscale", 0.1, "workload scale used by experiment benchmarks")

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := smrseek.RunExperiment(io.Discard, name, *benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Characterize regenerates Table I (workload characteristics).
func BenchmarkTable1Characterize(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2SeekCounts regenerates Figure 2 (NoLS vs LS seek counts).
func BenchmarkFig2SeekCounts(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3LongSeekSeries regenerates Figure 3 (long-seek overhead over time).
func BenchmarkFig3LongSeekSeries(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4DistanceCDF regenerates Figure 4 (access-distance CDFs).
func BenchmarkFig4DistanceCDF(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5FragmentCDF regenerates Figure 5 (fragmented-read skew).
func BenchmarkFig5FragmentCDF(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7Misorder regenerates Figure 7 (non-sequential write patterns).
func BenchmarkFig7Misorder(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Misordered regenerates Figure 8 (mis-ordered write fractions).
func BenchmarkFig8Misordered(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig10Popularity regenerates Figure 10 (fragment popularity).
func BenchmarkFig10Popularity(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11SAF regenerates Figure 11 (the headline SAF comparison).
func BenchmarkFig11SAF(b *testing.B) { benchExperiment(b, "fig11") }

// ---------------------------------------------------------------------
// Ablation benches: the knobs the paper fixes, swept. Reported metric is
// total SAF ×1000 (as saf_millis) so shapes are visible in bench output.

func w91Records(scale float64) *smrseek.Preloaded {
	return smrseek.PreloadRecords(smrseek.MustWorkload("w91").Generate(scale))
}

func safOf(b *testing.B, cfg smrseek.Config, pl *smrseek.Preloaded, baseSeeks int64) float64 {
	b.Helper()
	st, err := smrseek.RunPreloaded(cfg, pl)
	if err != nil {
		b.Fatal(err)
	}
	return float64(st.Disk.TotalSeeks()) / float64(baseSeeks)
}

func baseline(b *testing.B, pl *smrseek.Preloaded) int64 {
	b.Helper()
	st, err := smrseek.RunPreloaded(smrseek.Config{}, pl)
	if err != nil {
		b.Fatal(err)
	}
	return st.Disk.TotalSeeks()
}

// BenchmarkAblationCacheSize sweeps the selective cache capacity around
// the paper's fixed 64 MB.
func BenchmarkAblationCacheSize(b *testing.B) {
	recs := w91Records(*benchScale)
	base := baseline(b, recs)
	for _, mb := range []int64{4, 16, 64, 256} {
		mb := mb
		b.Run(byteLabel(mb), func(b *testing.B) {
			b.ReportAllocs()
			var saf float64
			for i := 0; i < b.N; i++ {
				cc := smrseek.CacheConfig{CapacityBytes: mb << 20}
				saf = safOf(b, smrseek.Config{LogStructured: true, Cache: &cc}, recs, base)
			}
			b.ReportMetric(saf*1000, "saf_millis")
		})
	}
}

// BenchmarkAblationPrefetchWindow sweeps the look-ahead-behind window.
func BenchmarkAblationPrefetchWindow(b *testing.B) {
	recs := w91Records(*benchScale)
	base := baseline(b, recs)
	for _, kb := range []int64{16, 64, 256, 1024} {
		kb := kb
		b.Run(itoa(kb)+"KiB", func(b *testing.B) {
			b.ReportAllocs()
			var saf float64
			for i := 0; i < b.N; i++ {
				pc := smrseek.PrefetchConfig{
					LookBehindSectors: kb * 2,
					LookAheadSectors:  kb * 2,
					BufferBytes:       32 << 20,
				}
				saf = safOf(b, smrseek.Config{LogStructured: true, Prefetch: &pc}, recs, base)
			}
			b.ReportMetric(saf*1000, "saf_millis")
			b.ReportMetric(float64(kb), "window_kb")
		})
	}
}

// BenchmarkAblationDefragGating sweeps the §IV-A gates (N fragments, k
// accesses) the paper mentions but does not evaluate.
func BenchmarkAblationDefragGating(b *testing.B) {
	recs := w91Records(*benchScale)
	base := baseline(b, recs)
	for _, g := range []smrseek.DefragConfig{
		{MinFragments: 2, MinAccesses: 1},
		{MinFragments: 4, MinAccesses: 1},
		{MinFragments: 2, MinAccesses: 3},
	} {
		g := g
		b.Run(gateLabel(g), func(b *testing.B) {
			b.ReportAllocs()
			var saf float64
			for i := 0; i < b.N; i++ {
				gg := g
				saf = safOf(b, smrseek.Config{LogStructured: true, Defrag: &gg}, recs, base)
			}
			b.ReportMetric(saf*1000, "saf_millis")
		})
	}
}

// BenchmarkAblationCombined runs all three mechanisms together — beyond
// the paper, which evaluates each alone.
func BenchmarkAblationCombined(b *testing.B) {
	recs := w91Records(*benchScale)
	base := baseline(b, recs)
	b.ReportAllocs()
	var saf float64
	for i := 0; i < b.N; i++ {
		d := smrseek.DefaultDefrag()
		p := smrseek.DefaultPrefetch()
		c := smrseek.DefaultCache()
		saf = safOf(b, smrseek.Config{LogStructured: true, Defrag: &d, Prefetch: &p, Cache: &c}, recs, base)
	}
	b.ReportMetric(saf*1000, "saf_millis")
}

// BenchmarkAblationCombinedBanded is BenchmarkAblationCombined on the
// finite banded device instead of the infinite model: same mechanisms,
// same trace, plus per-band write pointers, the persistent cache and
// the cleaning engine in the device path.
func BenchmarkAblationCombinedBanded(b *testing.B) {
	recs := w91Records(*benchScale)
	base := baseline(b, recs)
	b.ReportAllocs()
	var saf, wa float64
	for i := 0; i < b.N; i++ {
		dev, err := smrseek.NewBandDevice(smrseek.BandConfig{
			CacheSectors: 1 << 20,
			Policy:       smrseek.PolA,
		})
		if err != nil {
			b.Fatal(err)
		}
		d := smrseek.DefaultDefrag()
		p := smrseek.DefaultPrefetch()
		c := smrseek.DefaultCache()
		st, err := smrseek.RunPreloaded(smrseek.Config{
			Device:        dev,
			LogStructured: true,
			Defrag:        &d,
			Prefetch:      &p,
			Cache:         &c,
		}, recs)
		if err != nil {
			b.Fatal(err)
		}
		saf = float64(st.Disk.TotalSeeks()) / float64(base)
		wa = st.Cleaning.WriteAmp()
	}
	b.ReportMetric(saf*1000, "saf_millis")
	b.ReportMetric(wa*1000, "wa_millis")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (ops/sec)
// of the plain LS pipeline — the engineering number that bounds how big
// a trace the library can replay.
func BenchmarkSimulatorThroughput(b *testing.B) {
	pl := smrseek.PreloadRecords(smrseek.MustWorkload("w89").Generate(0.5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smrseek.RunPreloaded(smrseek.Config{LogStructured: true}, pl); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pl.Len()*b.N)/b.Elapsed().Seconds(), "ops/s")
}

func byteLabel(mb int64) string {
	switch {
	case mb >= 1024:
		return "1GiB"
	default:
		return itoa(mb) + "MiB"
	}
}

func gateLabel(g smrseek.DefragConfig) string {
	return "N" + itoa(int64(g.MinFragments)) + "k" + itoa(int64(g.MinAccesses))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
