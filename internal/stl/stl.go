// Package stl implements the block translation layers the paper compares:
// NoLS (untranslated, update-in-place — a conventional drive) and LS
// (log-structured with a full extent map and an advancing write frontier,
// the high-performance STL design of §II's "disk model").
//
// A translation layer is pure address arithmetic: it maps a logical
// operation to the physical extents the disk must visit. Seek accounting
// happens in package disk; mechanisms (defrag, prefetch, caching) compose
// around the layer in package core.
package stl

import (
	"smrseek/internal/extmap"
	"smrseek/internal/geom"
)

// Fragment is one physically-contiguous piece of a resolved logical
// operation.
type Fragment struct {
	// Lba is the logical range this fragment serves.
	Lba geom.Extent
	// Pba is the physical start sector.
	Pba geom.Sector
}

// PhysExtent returns the physical extent of the fragment.
func (f Fragment) PhysExtent() geom.Extent { return geom.Ext(f.Pba, f.Lba.Count) }

// Layer is a block translation layer.
type Layer interface {
	// Resolve maps a logical read extent to the physical fragments that
	// hold its data, in ascending LBA order. len(result) is the read's
	// dynamic fragmentation.
	Resolve(lba geom.Extent) []Fragment
	// Write maps a logical write extent to the physical extents that
	// receive the data, in the order they are written.
	Write(lba geom.Extent) []Fragment
	// Name identifies the layer in reports.
	Name() string
}

// Previewer is implemented by layers that can report where a write
// would land without mutating any state. Simulators use it to make
// relocations (defrag write-backs) atomic under faults: the disk I/O is
// attempted against the previewed placement first, and the mapping is
// committed only if every attempt succeeds — an aborted relocation
// leaves the extent map exactly as it was.
type Previewer interface {
	// PreviewWrite returns the fragments Write(lba) would produce, in
	// write order, without performing the write. A subsequent Write of
	// the same extent (with no intervening writes) must land exactly on
	// the previewed placement.
	PreviewWrite(lba geom.Extent) []Fragment
}

// The Append* capability interfaces are the zero-allocation forms of
// Layer and Previewer: each appends its fragments to a caller-provided
// buffer (usually a per-simulator scratch slice, passed with length 0
// and warm capacity) instead of allocating a fresh slice per operation.
// Results must be identical to the slice-returning method element for
// element; an empty extent appends nothing. The simulator detects these
// at construction and prefers them on the per-access hot path.

// AppendResolver is the buffer-reusing form of Layer.Resolve.
type AppendResolver interface {
	ResolveAppend(dst []Fragment, lba geom.Extent) []Fragment
}

// AppendWriter is the buffer-reusing form of Layer.Write.
type AppendWriter interface {
	WriteAppend(dst []Fragment, lba geom.Extent) []Fragment
}

// AppendPreviewer is the buffer-reusing form of Previewer.PreviewWrite.
type AppendPreviewer interface {
	PreviewWriteAppend(dst []Fragment, lba geom.Extent) []Fragment
}

// NoLS is the untranslated baseline: every LBA lives at PBA == LBA, and
// writes update in place.
type NoLS struct{}

// NewNoLS returns the identity translation layer.
func NewNoLS() *NoLS { return &NoLS{} }

// Resolve implements Layer.
func (*NoLS) Resolve(lba geom.Extent) []Fragment {
	if lba.Empty() {
		return nil
	}
	return []Fragment{{Lba: lba, Pba: lba.Start}}
}

// Write implements Layer.
func (*NoLS) Write(lba geom.Extent) []Fragment {
	if lba.Empty() {
		return nil
	}
	return []Fragment{{Lba: lba, Pba: lba.Start}}
}

// ResolveAppend implements AppendResolver.
func (*NoLS) ResolveAppend(dst []Fragment, lba geom.Extent) []Fragment {
	if lba.Empty() {
		return dst
	}
	return append(dst, Fragment{Lba: lba, Pba: lba.Start})
}

// WriteAppend implements AppendWriter.
func (*NoLS) WriteAppend(dst []Fragment, lba geom.Extent) []Fragment {
	if lba.Empty() {
		return dst
	}
	return append(dst, Fragment{Lba: lba, Pba: lba.Start})
}

// Name implements Layer.
func (*NoLS) Name() string { return "NoLS" }

// LS is the log-structured layer: every write lands at the write
// frontier, which starts above the highest LBA the workload will touch
// (unwritten data is assumed resident at PBA == LBA, per the paper §III).
type LS struct {
	m        *extmap.Map
	frontier geom.Sector
	written  int64 // sectors appended to the log (includes rewrites)
}

// NewLS returns a log-structured layer whose write frontier starts at
// frontierStart (typically the device size or trace MaxLBA). The map
// coalesces mappings contiguous in both address spaces, so sequential
// frontier writes stay one mapping — and so checkpoints of long
// sequential workloads stay small.
func NewLS(frontierStart geom.Sector) *LS {
	return &LS{m: extmap.NewCoalesced(), frontier: frontierStart}
}

// Resolve implements Layer.
func (l *LS) Resolve(lba geom.Extent) []Fragment {
	if lba.Empty() {
		return nil
	}
	return l.ResolveAppend(nil, lba)
}

// ResolveAppend implements AppendResolver: fragments stream straight
// from the extent map's visitor into dst, so a warm buffer makes the
// resolution allocation-free.
func (l *LS) ResolveAppend(dst []Fragment, lba geom.Extent) []Fragment {
	l.m.LookupFunc(lba, func(r extmap.Resolved) bool {
		dst = append(dst, Fragment{Lba: r.Lba, Pba: r.Pba})
		return true
	})
	return dst
}

// Write implements Layer: the whole extent is appended at the frontier.
func (l *LS) Write(lba geom.Extent) []Fragment {
	if lba.Empty() {
		return nil
	}
	return l.WriteAppend(nil, lba)
}

// WriteAppend implements AppendWriter. Displaced mappings are dropped
// without materializing (LS never reuses old log space).
func (l *LS) WriteAppend(dst []Fragment, lba geom.Extent) []Fragment {
	if lba.Empty() {
		return dst
	}
	pba := l.frontier
	l.m.InsertFunc(lba, pba, nil)
	l.frontier += lba.Count
	l.written += lba.Count
	return append(dst, Fragment{Lba: lba, Pba: pba})
}

// PreviewWrite implements Previewer: the whole extent would land at the
// current frontier. No state changes.
func (l *LS) PreviewWrite(lba geom.Extent) []Fragment {
	if lba.Empty() {
		return nil
	}
	return []Fragment{{Lba: lba, Pba: l.frontier}}
}

// PreviewWriteAppend implements AppendPreviewer.
func (l *LS) PreviewWriteAppend(dst []Fragment, lba geom.Extent) []Fragment {
	if lba.Empty() {
		return dst
	}
	return append(dst, Fragment{Lba: lba, Pba: l.frontier})
}

// Name implements Layer.
func (l *LS) Name() string { return "LS" }

// Frontier returns the current write frontier position.
func (l *LS) Frontier() geom.Sector { return l.frontier }

// LogSectors returns the total sectors ever appended to the log; minus
// the live mapped sectors this is the dead (cleanable) space.
func (l *LS) LogSectors() int64 { return l.written }

// Map exposes the extent map for analyses (static fragmentation etc.).
func (l *LS) Map() *extmap.Map { return l.m }

// Fragments returns the dynamic fragmentation of a read of lba.
func (l *LS) Fragments(lba geom.Extent) int { return l.m.Fragments(lba) }

var (
	_ Layer           = (*NoLS)(nil)
	_ Layer           = (*LS)(nil)
	_ Previewer       = (*LS)(nil)
	_ AppendResolver  = (*NoLS)(nil)
	_ AppendWriter    = (*NoLS)(nil)
	_ AppendResolver  = (*LS)(nil)
	_ AppendWriter    = (*LS)(nil)
	_ AppendPreviewer = (*LS)(nil)
)
