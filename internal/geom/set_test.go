package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAddMerges(t *testing.T) {
	s := NewSet()
	s.Add(Ext(0, 10))
	s.Add(Ext(20, 10))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Add(Ext(10, 10)) // bridges the gap
	if s.Len() != 1 {
		t.Fatalf("after bridge Len = %d, want 1", s.Len())
	}
	if got := s.Extents()[0]; got != Ext(0, 30) {
		t.Fatalf("merged extent = %v", got)
	}
	if s.Sectors() != 30 {
		t.Fatalf("Sectors = %d", s.Sectors())
	}
}

func TestSetAddOverlap(t *testing.T) {
	s := NewSet(Ext(0, 10), Ext(15, 5), Ext(30, 5))
	s.Add(Ext(5, 20)) // overlaps first two
	want := []Extent{Ext(0, 25), Ext(30, 5)}
	got := s.Extents()
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSetRemove(t *testing.T) {
	s := NewSet(Ext(0, 30))
	s.Remove(Ext(10, 10))
	want := []Extent{Ext(0, 10), Ext(20, 10)}
	got := s.Extents()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v want %v", got, want)
	}
	s.Remove(Ext(0, 100))
	if s.Len() != 0 {
		t.Fatalf("remove-all left %v", s.Extents())
	}
	s.Remove(Ext(0, 10)) // removing from empty is a no-op
}

func TestSetContainsCoveredMissing(t *testing.T) {
	s := NewSet(Ext(10, 10), Ext(30, 10))
	if !s.Contains(Ext(12, 5)) {
		t.Error("should contain interior")
	}
	if s.Contains(Ext(15, 20)) {
		t.Error("straddles a hole")
	}
	if !s.ContainsSector(10) || s.ContainsSector(20) {
		t.Error("ContainsSector wrong")
	}
	cov := s.Covered(Ext(0, 50))
	if len(cov) != 2 || cov[0] != Ext(10, 10) || cov[1] != Ext(30, 10) {
		t.Errorf("Covered = %v", cov)
	}
	miss := s.Missing(Ext(0, 50))
	want := []Extent{Ext(0, 10), Ext(20, 10), Ext(40, 10)}
	if len(miss) != 3 {
		t.Fatalf("Missing = %v", miss)
	}
	for i := range miss {
		if miss[i] != want[i] {
			t.Errorf("Missing = %v, want %v", miss, want)
		}
	}
	if got := s.Missing(Extent{}); got != nil {
		t.Errorf("Missing(empty) = %v", got)
	}
}

func TestSetClear(t *testing.T) {
	s := NewSet(Ext(0, 5))
	s.Clear()
	if s.Len() != 0 || s.Sectors() != 0 {
		t.Error("Clear did not empty set")
	}
}

// naiveSet is a reference model: a boolean per sector.
type naiveSet map[Sector]bool

func (n naiveSet) add(e Extent) {
	for s := e.Start; s < e.End(); s++ {
		n[s] = true
	}
}
func (n naiveSet) remove(e Extent) {
	for s := e.Start; s < e.End(); s++ {
		delete(n, s)
	}
}
func (n naiveSet) contains(e Extent) bool {
	for s := e.Start; s < e.End(); s++ {
		if !n[s] {
			return false
		}
	}
	return true
}

// TestSetAgainstModel runs a randomized operation sequence against both the
// interval set and a per-sector model and requires identical semantics.
func TestSetAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewSet()
	model := naiveSet{}
	const space = 300
	for i := 0; i < 5000; i++ {
		e := Ext(int64(rng.Intn(space)), int64(rng.Intn(20)))
		switch rng.Intn(3) {
		case 0:
			s.Add(e)
			model.add(e)
		case 1:
			s.Remove(e)
			model.remove(e)
		case 2:
			if got, want := s.Contains(e), model.contains(e); got != want {
				t.Fatalf("step %d: Contains(%v) = %v, model says %v", i, e, got, want)
			}
		}
		// Invariants: disjoint, non-adjacent, ascending; total matches model.
		exts := s.Extents()
		var total int64
		for j, x := range exts {
			if x.Empty() {
				t.Fatalf("step %d: empty extent in set", i)
			}
			if j > 0 && exts[j-1].End() >= x.Start {
				t.Fatalf("step %d: extents not normalized: %v", i, exts)
			}
			total += x.Count
		}
		if total != int64(len(model)) {
			t.Fatalf("step %d: set covers %d sectors, model %d", i, total, len(model))
		}
	}
}

// Property: after Add(e), Contains(e) always holds.
func TestSetAddContainsProperty(t *testing.T) {
	f := func(seeds []uint16, qs, qc uint16) bool {
		s := NewSet()
		for i := 0; i+1 < len(seeds); i += 2 {
			s.Add(Ext(int64(seeds[i]%500), int64(seeds[i+1]%40)))
		}
		q := Ext(int64(qs%500), int64(qc%40))
		s.Add(q)
		return s.Contains(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
