package journal

import (
	"os"
	"strings"
	"testing"
)

// chunkFixture builds a sealed journal and returns its bytes plus the
// seal-boundary offsets (absolute, just past each seal frame).
func chunkFixture(t *testing.T, nSeals int) (raw []byte, bounds []int64) {
	t.Helper()
	dir := t.TempDir()
	l := buildSealedPair(t, dir, nSeals)
	seals := l.Seals()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seals {
		bounds = append(bounds, s.Offset+sealFrameSize)
	}
	return raw, bounds
}

// TestVerifyChunkSegmentsIncremental feeds a sealed journal to the
// incremental verifier one seal-bounded chunk at a time: each chunk
// must verify exactly once against the cached frontier, and the final
// state must agree with a full scan.
func TestVerifyChunkSegmentsIncremental(t *testing.T) {
	raw, bounds := chunkFixture(t, 4)
	d, err := scanJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	gen, _, anchor, err := unmarshalHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	st := ChunkState{Gen: gen, Offset: HeaderLen, Chain: anchor}
	prev := HeaderLen
	for i, b := range bounds {
		st, err = VerifyChunkSegments(raw[prev:b], st)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if st.Offset != b || st.Seals != i+1 {
			t.Fatalf("chunk %d: frontier (off=%d seals=%d), want (off=%d seals=%d)",
				i, st.Offset, st.Seals, b, i+1)
		}
		prev = b
	}
	if st.Chain != d.ChainHead() || st.Records != d.Sealed {
		t.Fatalf("final frontier chain=%s records=%d, scan says chain=%s records=%d",
			st.Chain.Short(), st.Records, d.ChainHead().Short(), d.Sealed)
	}
	// Multi-segment chunks work too: the whole body in one go.
	st2, err := VerifyChunkSegments(raw[HeaderLen:], ChunkState{Gen: gen, Offset: HeaderLen, Chain: anchor})
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Fatalf("one-chunk frontier %+v differs from incremental %+v", st2, st)
	}
}

// TestVerifyChunkSegmentsRejects drives every rejection path and
// asserts the returned state is the unchanged input on each.
func TestVerifyChunkSegmentsRejects(t *testing.T) {
	raw, bounds := chunkFixture(t, 3)
	gen, _, anchor, err := unmarshalHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	base := ChunkState{Gen: gen, Offset: HeaderLen, Chain: anchor}
	first := raw[HeaderLen:bounds[0]]

	cases := []struct {
		name string
		data []byte
		st   ChunkState
		want string
	}{
		{"empty", nil, base, "empty segment chunk"},
		{"pre-header state", first, ChunkState{Gen: gen}, "precedes the header"},
		{"torn mid-frame", first[:len(first)-2], base, "partial frame"},
		{"unsealed records only", first[:frameSize], base, "unsealed"},
		{"flipped record byte", mutate(first, 10, 0xff), base, "checksum mismatch"},
		{"flipped seal root", mutate(first, len(first)-20, 0xff), base, "checksum mismatch"},
		{"skipped segment", raw[bounds[0]:bounds[1]], base, "seal index"},
		{"replayed segment", first, ChunkState{Gen: gen, Offset: bounds[0], Chain: anchor, Seals: 1}, "seal index"},
	}
	for _, tc := range cases {
		got, err := VerifyChunkSegments(tc.data, tc.st)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want substring %q", tc.name, err, tc.want)
		}
		if got != tc.st {
			t.Errorf("%s: state advanced to %+v on failure, want unchanged %+v", tc.name, got, tc.st)
		}
	}
}

// TestVerifyChunkSegmentsChainBinding: a chunk whose seals are
// internally consistent but built on a different chain head must be
// rejected — the frontier's chain is what binds chunks to the history
// already verified.
func TestVerifyChunkSegmentsChainBinding(t *testing.T) {
	raw, bounds := chunkFixture(t, 2)
	gen, _, _, err := unmarshalHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	wrong := ChunkState{Gen: gen, Offset: HeaderLen, Chain: LeafHash([]byte("impostor"))}
	if _, err := VerifyChunkSegments(raw[HeaderLen:bounds[0]], wrong); err == nil ||
		!strings.Contains(err.Error(), "chain") {
		t.Fatalf("chunk verified against a foreign chain head: %v", err)
	}
}
