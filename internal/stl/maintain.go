package stl

import (
	"smrseek/internal/disk"
	"smrseek/internal/geom"
)

// MaintenanceOp is one background physical I/O a translation layer needs
// the drive to perform — cleaning reads and writes, media-cache merges,
// zone rewrites. Maintenance I/O moves the head like any host I/O, so
// the simulator plays these through the disk model and its seeks count.
type MaintenanceOp struct {
	Kind   disk.OpKind
	Extent geom.Extent // physical sectors
}

// Maintainer is implemented by translation layers that generate
// background I/O. After each host operation the simulator drains
// PendingMaintenance and plays the operations in order.
type Maintainer interface {
	// PendingMaintenance returns and clears the queued background I/O.
	PendingMaintenance() []MaintenanceOp
}

// Amplifier is implemented by layers that relocate data internally and
// can therefore report a write amplification factor.
type Amplifier interface {
	// HostSectors returns sectors written by the host; ExtraSectors
	// returns sectors the layer wrote on its own behalf (merges,
	// cleaning). WAF = (Host+Extra)/Host.
	HostSectors() int64
	ExtraSectors() int64
}

// WAF computes a write amplification factor from an Amplifier; a layer
// that has written nothing reports 1.
func WAF(a Amplifier) float64 {
	host := a.HostSectors()
	if host == 0 {
		return 1
	}
	return float64(host+a.ExtraSectors()) / float64(host)
}
