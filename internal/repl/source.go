package repl

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"smrseek/internal/journal"
	"smrseek/internal/server"
	"smrseek/internal/volume"
)

// Defaults for PrimaryConfig's zero values.
const (
	DefaultTailWait  = time.Second
	DefaultPollEvery = 250 * time.Millisecond
	// pulseEvery is the cond-broadcast heartbeat that turns cond.Wait
	// into a timed wait for gate and tail deadlines.
	pulseEvery = 20 * time.Millisecond
)

// mark is one seal boundary: after it, the journal's generation gen is
// sealed through byte offset bytes, and the seal commits every write up
// to the cumulative append watermark appends. A follower ack of
// (gen', off') with gen' > gen, or gen' == gen and off' >= bytes,
// proves the follower holds (verified) every one of those writes.
type mark struct {
	gen     uint64
	bytes   int64
	appends int64
}

// covered reports whether a follower ack at (gen, off) proves
// possession of mark m.
func (m mark) covered(gen uint64, off int64) bool {
	return m.gen < gen || (m.gen == gen && m.bytes <= off)
}

// src is one volume's replication state on the primary.
type src struct {
	v        *volume.Volume // nil until AttachManager
	marks    []mark         // seal boundaries, oldest first; last = sealed frontier
	ackGen   uint64         // follower's highest acked position
	ackBytes int64
	acked    int64 // highest append watermark covered by acks
	// degraded latches after a gate timeout: the follower is too far
	// behind (or gone), so writes stop paying the sync wait until its
	// acks cover the sealed frontier again. Every write acked in this
	// mode counts into Primary.degraded — the honest tally of
	// acknowledgments that would not survive losing the primary.
	degraded bool
}

// PrimaryConfig tunes a replication primary.
type PrimaryConfig struct {
	// Root is the journal root directory; the fencing-epoch file lives
	// here.
	Root string
	// SyncTimeout bounds how long an OpWrite acknowledgment waits for a
	// follower ack to cover it. 0 disables write gating entirely
	// (asynchronous replication: acknowledged-but-unshipped writes can be
	// lost with the primary).
	SyncTimeout time.Duration
	// ForceSealEvery bounds how long acknowledged records may sit in an
	// open (unsealed, unshippable) segment: a ticker force-seals every
	// volume at this period. 0 disables the tick.
	ForceSealEvery time.Duration
	// TailWait bounds one OpTail long-poll (0 = DefaultTailWait).
	TailWait time.Duration
	// Peers are the other nodes' addresses, polled for a higher fencing
	// epoch; seeing one demotes this primary to "fenced".
	Peers []string
	// PollEvery is the peer poll period (0 = DefaultPollEvery).
	PollEvery time.Duration
	// Logf receives replication diagnostics (nil = log.Printf).
	Logf func(format string, args ...any)
}

// Primary implements server.ReplHooks for the serving side: it tracks
// seal watermarks and follower acks per volume, gates write
// acknowledgments, answers tail long-polls, force-seals on a tick, and
// fences itself when a peer serves at a higher epoch.
type Primary struct {
	cfg PrimaryConfig

	mu       sync.Mutex
	cond     *sync.Cond
	vols     map[string]*src
	epoch    uint64
	fenced   bool
	degraded int64 // writes released by degrade timeout, not by ack

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewPrimary loads (or initializes) the fencing epoch and returns a
// primary ready to hand out OnSeal subscriptions. Call AttachManager
// once the volumes are open to start the force-seal tick and peer poll.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.TailWait <= 0 {
		cfg.TailWait = DefaultTailWait
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = DefaultPollEvery
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	epoch, err := LoadEpoch(cfg.Root)
	if err != nil {
		return nil, err
	}
	if epoch == 0 {
		// First boot as primary: epoch 1.
		epoch = 1
		if err := StoreEpoch(cfg.Root, epoch); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Primary{
		cfg:    cfg,
		vols:   make(map[string]*src),
		epoch:  epoch,
		ctx:    ctx,
		cancel: cancel,
	}
	p.cond = sync.NewCond(&p.mu)
	// The pulse turns cond.Wait into a timed wait: gate and tail loops
	// re-check their deadlines at every broadcast.
	p.wg.Add(1)
	go p.pulse()
	return p, nil
}

// Close stops the background loops and releases every gated waiter.
func (p *Primary) Close() {
	p.cancel()
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// OnSeal returns the seal-chain subscription to install as the named
// volume's Config.OnSeal before opening it. It runs on the volume's
// actor goroutine and must stay non-blocking.
func (p *Primary) OnSeal(vol string) journal.SealFunc {
	return func(gen uint64, sealedBytes, appends int64) {
		p.mu.Lock()
		s := p.src(vol)
		s.marks = append(s.marks, mark{gen: gen, bytes: sealedBytes, appends: appends})
		p.settle(s)
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// AttachManager wires the open volumes to their replication state and
// starts the force-seal tick and peer poll.
func (p *Primary) AttachManager(mgr *volume.Manager) {
	p.mu.Lock()
	for _, name := range mgr.Names() {
		v, _ := mgr.Get(name)
		p.src(name).v = v
	}
	p.mu.Unlock()
	if p.cfg.ForceSealEvery > 0 {
		p.wg.Add(1)
		go p.sealTick()
	}
	if len(p.cfg.Peers) > 0 {
		p.wg.Add(1)
		go p.pollPeers()
	}
}

// src returns (creating if needed) the volume's state. Callers hold mu.
func (p *Primary) src(vol string) *src {
	s, ok := p.vols[vol]
	if !ok {
		s = new(src)
		p.vols[vol] = s
	}
	return s
}

// settle recomputes the covered-ack watermark and drops marks the
// follower has passed (the newest mark always stays: it is the sealed
// frontier Role reports and tail waits compare against). Callers hold
// mu.
func (p *Primary) settle(s *src) {
	kept := s.marks[:0]
	for i, m := range s.marks {
		if m.covered(s.ackGen, s.ackBytes) {
			if m.appends > s.acked {
				s.acked = m.appends
			}
			if i != len(s.marks)-1 {
				continue
			}
		}
		kept = append(kept, m)
	}
	s.marks = kept
	// The follower's acks cover the whole sealed frontier again: leave
	// degraded mode, writes gate synchronously once more.
	if n := len(s.marks); n > 0 && s.marks[n-1].covered(s.ackGen, s.ackBytes) {
		s.degraded = false
	}
}

// Role reports the node's role, epoch and per-volume sealed frontiers.
func (p *Primary) Role() server.RoleInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	role := "primary"
	if p.fenced {
		role = "fenced"
	}
	vols := make(map[string]server.ReplPosition, len(p.vols))
	for name, s := range p.vols {
		if n := len(s.marks); n > 0 {
			m := s.marks[n-1]
			vols[name] = server.ReplPosition{Gen: m.gen, Bytes: m.bytes, Records: m.appends}
		}
	}
	return server.RoleInfo{Role: role, Epoch: p.epoch, Volumes: vols}
}

// Epoch returns the fencing epoch.
func (p *Primary) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// AcceptingData reports whether data ops may be served: true until the
// peer poll fences this node.
func (p *Primary) AcceptingData() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.fenced
}

// Degraded returns how many gated writes were released by the degrade
// timeout instead of a follower ack — the honest count of
// acknowledgments that would not survive losing the primary.
func (p *Primary) Degraded() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded
}

// GateWrite holds an OpWrite acknowledgment until a follower ack covers
// journal watermark seq on vol, the degrade window expires, the node
// fences, or the primary shuts down. A write not yet behind a seal
// force-seals its volume first — replication is the whole point of the
// wait, so the segment closes now rather than at the next tick. After a
// timeout the volume latches into degraded (asynchronous) mode until
// the follower's acks cover the sealed frontier again, so a dead
// follower costs one degrade window total, not one per write.
func (p *Primary) GateWrite(vol string, seq int64) {
	if p.cfg.SyncTimeout <= 0 || seq <= 0 {
		return
	}
	deadline := time.Now().Add(p.cfg.SyncTimeout)
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.src(vol)
	if s.degraded {
		p.degraded++
		return
	}
	if n := len(s.marks); (n == 0 || s.marks[n-1].appends < seq) && s.v != nil {
		v := s.v
		p.mu.Unlock()
		p.forceSeal(v)
		p.mu.Lock()
	}
	for s.acked < seq && !p.fenced && p.ctx.Err() == nil {
		if time.Now().After(deadline) {
			s.degraded = true
			p.degraded++
			return
		}
		p.cond.Wait()
	}
}

// WaitTail holds an OpTail until vol's sealed frontier moves past
// (gen, off) or the tail window expires. A follower that has caught up
// to the frontier triggers a force-seal, so acknowledged-but-unsealed
// tail records replicate within one round trip instead of waiting for
// the segment to fill.
func (p *Primary) WaitTail(ctx context.Context, vol string, gen uint64, off int64) {
	deadline := time.Now().Add(p.cfg.TailWait)
	p.mu.Lock()
	s := p.src(vol)
	if !frontierBeyond(s, gen, off) {
		v := s.v
		p.mu.Unlock()
		p.forceSeal(v)
		p.mu.Lock()
	}
	for !frontierBeyond(s, gen, off) && ctx.Err() == nil && p.ctx.Err() == nil {
		if time.Now().After(deadline) {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// frontierBeyond reports whether the volume's sealed frontier is past
// (gen, off). Callers hold mu.
func frontierBeyond(s *src, gen uint64, off int64) bool {
	n := len(s.marks)
	if n == 0 {
		return false
	}
	m := s.marks[n-1]
	return m.gen > gen || (m.gen == gen && m.bytes > off)
}

// Ack records a follower's verified position and releases every gated
// write it covers.
func (p *Primary) Ack(vol string, gen uint64, off int64) {
	p.mu.Lock()
	s := p.src(vol)
	if gen > s.ackGen || (gen == s.ackGen && off > s.ackBytes) {
		s.ackGen, s.ackBytes = gen, off
		p.settle(s)
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Promote on a primary is idempotent; a fenced ex-primary refuses —
// its unreplicated tail may conflict with the serving primary's
// history, so it must rejoin as a follower instead.
func (p *Primary) Promote() (server.RoleInfo, error) {
	p.mu.Lock()
	fenced := p.fenced
	p.mu.Unlock()
	if fenced {
		return p.Role(), fmt.Errorf("repl: fenced ex-primary; rejoin as follower")
	}
	return p.Role(), nil
}

// forceSeal submits a non-blocking OpSeal to the volume's actor; an
// overloaded queue skips the tick (the next one retries).
func (p *Primary) forceSeal(v *volume.Volume) {
	if v == nil {
		return
	}
	done := make(chan volume.Result, 1)
	_ = v.TryDo(volume.Request{Kind: volume.OpSeal}, done)
}

// pulse broadcasts the cond periodically so gate and tail waits can
// enforce deadlines.
func (p *Primary) pulse() {
	defer p.wg.Done()
	t := time.NewTicker(pulseEvery)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// sealTick force-seals every volume on a period, bounding how long
// acknowledged records can sit unsealed and therefore unshipped.
func (p *Primary) sealTick() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.ForceSealEvery)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
			p.mu.Lock()
			targets := make([]*volume.Volume, 0, len(p.vols))
			for _, s := range p.vols {
				if s.v != nil {
					targets = append(targets, s.v)
				}
			}
			p.mu.Unlock()
			for _, v := range targets {
				p.forceSeal(v)
			}
		}
	}
}

// pollPeers watches the other nodes for a higher fencing epoch. A peer
// serving as primary at a higher epoch means this node was superseded
// while partitioned or down: it fences itself — data ops start failing
// with StatusNotPrimary — rather than split-braining.
func (p *Primary) pollPeers() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.PollEvery)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
			for _, peer := range p.cfg.Peers {
				p.probe(peer)
			}
		}
	}
}

// probe asks one peer for its role and fences this node if the peer
// serves at a higher epoch.
func (p *Primary) probe(peer string) {
	ctx, cancel := context.WithTimeout(p.ctx, p.cfg.PollEvery)
	defer cancel()
	c, err := server.DialContext(ctx, peer)
	if err != nil {
		return
	}
	defer c.Close()
	c.SetReconnect(server.ReconnectPolicy{})
	info, err := c.Role()
	if err != nil {
		return
	}
	p.mu.Lock()
	if info.Role == "primary" && info.Epoch > p.epoch && !p.fenced {
		p.fenced = true
		p.cond.Broadcast()
		p.cfg.Logf("repl: fenced: peer %s serves at epoch %d > local %d", peer, info.Epoch, p.epoch)
	}
	p.mu.Unlock()
}
