package extmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smrseek/internal/geom"
)

func resolveEq(a, b Resolved) bool {
	return a.Lba == b.Lba && a.Pba == b.Pba && a.Identity == b.Identity
}

func TestEmptyMapIdentity(t *testing.T) {
	m := New()
	got := m.Lookup(geom.Ext(100, 50))
	want := Resolved{Lba: geom.Ext(100, 50), Pba: 100, Identity: true}
	if len(got) != 1 || !resolveEq(got[0], want) {
		t.Fatalf("Lookup on empty map = %v, want [%v]", got, want)
	}
	if m.Fragments(geom.Ext(0, 10)) != 1 {
		t.Error("empty map range should be one fragment")
	}
	if m.Len() != 0 || m.MappedSectors() != 0 {
		t.Error("empty map should have no mappings")
	}
	if m.Lookup(geom.Extent{}) != nil {
		t.Error("empty query returns nil")
	}
}

func TestInsertLookupSimple(t *testing.T) {
	m := New()
	m.Insert(geom.Ext(10, 5), 1000)
	got := m.Lookup(geom.Ext(10, 5))
	if len(got) != 1 || got[0].Pba != 1000 || got[0].Identity {
		t.Fatalf("Lookup = %v", got)
	}
	// A read straddling mapped and unmapped space has 3 fragments:
	// identity prefix, relocated middle, identity suffix.
	got = m.Lookup(geom.Ext(5, 15))
	if len(got) != 3 {
		t.Fatalf("straddling read fragments = %v", got)
	}
	if !got[0].Identity || got[0].Lba != geom.Ext(5, 5) || got[0].Pba != 5 {
		t.Errorf("prefix = %+v", got[0])
	}
	if got[1].Identity || got[1].Lba != geom.Ext(10, 5) || got[1].Pba != 1000 {
		t.Errorf("middle = %+v", got[1])
	}
	if !got[2].Identity || got[2].Lba != geom.Ext(15, 5) || got[2].Pba != 15 {
		t.Errorf("suffix = %+v", got[2])
	}
}

func TestInsertOverwriteSplits(t *testing.T) {
	m := New()
	m.Insert(geom.Ext(0, 100), 1000) // [0,100) -> 1000
	m.Insert(geom.Ext(40, 20), 2000) // punch a hole in the middle
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	got := m.Lookup(geom.Ext(0, 100))
	want := []Resolved{
		{Lba: geom.Ext(0, 40), Pba: 1000},
		{Lba: geom.Ext(40, 20), Pba: 2000},
		{Lba: geom.Ext(60, 40), Pba: 1060},
	}
	if len(got) != len(want) {
		t.Fatalf("Lookup = %v, want %v", got, want)
	}
	for i := range got {
		if !resolveEq(got[i], want[i]) {
			t.Errorf("fragment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupMergesContiguousPhys(t *testing.T) {
	m := New()
	// Two LBA-adjacent writes that also landed physically adjacent (the
	// log-structured common case) must resolve as ONE fragment.
	m.Insert(geom.Ext(10, 5), 1000)
	m.Insert(geom.Ext(15, 5), 1005)
	got := m.Lookup(geom.Ext(10, 10))
	if len(got) != 1 || got[0].Lba != geom.Ext(10, 10) || got[0].Pba != 1000 {
		t.Fatalf("merge failed: %v", got)
	}
	// Adjacent identity gaps merge with each other too.
	m2 := New()
	m2.Insert(geom.Ext(50, 1), 999)
	m2.Insert(geom.Ext(50, 1), 50) // map back to identity position
	got = m2.Lookup(geom.Ext(45, 10))
	if len(got) != 1 || got[0].Lba != geom.Ext(45, 10) || got[0].Pba != 45 {
		t.Fatalf("identity-position merge failed: %v", got)
	}
	if got[0].Identity {
		t.Error("piece containing an explicit mapping is not Identity")
	}
}

func TestFragmentsCountsPaperExample(t *testing.T) {
	// Figure 6: LBA 1..6 contiguous, then writes to LBA 3 and 5 fragment
	// the range; a read of 2..5 touches 3 extents (2 | 4 | ... 3,5 at log).
	m := New()
	dev := int64(100)
	frontier := dev
	write := func(e geom.Extent) {
		m.Insert(e, frontier)
		frontier += e.Count
	}
	write(geom.Ext(1, 6)) // initial layout: LBAs 1..6 at log, contiguous
	write(geom.Ext(3, 1)) // update LBA 3
	write(geom.Ext(5, 1)) // update LBA 5
	// Read LBA 2..5 inclusive = Ext(2, 4): pieces are 2 (old log), 3
	// (new), 4 (old), 5 (new) — 4 fragments.
	if got := m.Fragments(geom.Ext(2, 4)); got != 4 {
		t.Fatalf("Fragments = %d, want 4 (%v)", got, m.Lookup(geom.Ext(2, 4)))
	}
	// Defragment: rewrite 2..5 at the frontier; now a re-read is 1 fragment.
	write(geom.Ext(2, 4))
	if got := m.Fragments(geom.Ext(2, 4)); got != 1 {
		t.Fatalf("after defrag Fragments = %d, want 1", got)
	}
	// But LBA 1..2 now spans old log position and new — extra fragment,
	// exactly the paper's t_F caveat.
	if got := m.Fragments(geom.Ext(1, 2)); got != 2 {
		t.Fatalf("Fragments(1..2) = %d, want 2", got)
	}
}

func TestStaticFragments(t *testing.T) {
	m := New()
	if got := m.StaticFragments(100); got != 1 {
		t.Fatalf("empty map static fragments = %d, want 1", got)
	}
	if got := m.StaticFragments(0); got != 0 {
		t.Fatalf("zero device = %d, want 0", got)
	}
	m.Insert(geom.Ext(10, 5), 1000)
	// scan: [0,10) identity, [10,15)->1000, [15,100) identity = 3 pieces.
	if got := m.StaticFragments(100); got != 3 {
		t.Fatalf("static fragments = %d, want 3", got)
	}
	// Mapping beyond the device is ignored.
	m.Insert(geom.Ext(200, 5), 2000)
	if got := m.StaticFragments(100); got != 3 {
		t.Fatalf("static fragments with out-of-range mapping = %d, want 3", got)
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Insert(geom.Ext(int64(i*10), 5), int64(10000+i*5))
	}
	var starts []int64
	m.Walk(func(mm Mapping) bool {
		starts = append(starts, mm.Lba.Start)
		return len(starts) < 10
	})
	if len(starts) != 10 {
		t.Fatalf("early stop failed, visited %d", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatalf("walk out of order: %v", starts)
		}
	}
}

// sectorModel is the brute-force reference: one PBA per LBA sector, -1
// meaning identity.
type sectorModel []int64

func newSectorModel(n int) sectorModel {
	m := make(sectorModel, n)
	for i := range m {
		m[i] = -1
	}
	return m
}

func (s sectorModel) insert(lba geom.Extent, pba geom.Sector) {
	for i := int64(0); i < lba.Count; i++ {
		s[lba.Start+i] = pba + i
	}
}

// resolve produces merged fragments exactly as Map.Lookup should.
func (s sectorModel) resolve(q geom.Extent) []Resolved {
	var out []Resolved
	for i := q.Start; i < q.End(); i++ {
		pba := s[i]
		ident := pba < 0
		if ident {
			pba = i
		}
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.Lba.End() == i && prev.Pba+prev.Lba.Count == pba {
				prev.Lba.Count++
				prev.Identity = prev.Identity && ident
				continue
			}
		}
		out = append(out, Resolved{Lba: geom.Ext(i, 1), Pba: pba, Identity: ident})
	}
	return out
}

func TestMapAgainstSectorModel(t *testing.T) {
	const space = 400
	rng := rand.New(rand.NewSource(7))
	m := New()
	model := newSectorModel(space)
	frontier := int64(space)
	for step := 0; step < 4000; step++ {
		e := geom.Ext(int64(rng.Intn(space-30)), int64(1+rng.Intn(30)))
		if rng.Intn(2) == 0 {
			m.Insert(e, frontier)
			model.insert(e, frontier)
			frontier += e.Count
		} else {
			got := m.Lookup(e)
			want := model.resolve(e)
			if len(got) != len(want) {
				t.Fatalf("step %d: Lookup(%v) = %v, want %v", step, e, got, want)
			}
			for i := range got {
				if !resolveEq(got[i], want[i]) {
					t.Fatalf("step %d: fragment %d = %+v, want %+v", step, i, got[i], want[i])
				}
			}
		}
		if step%200 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of inserts, looking up an inserted extent
// returns exactly one fragment at the inserted PBA if it was the last
// write of that range.
func TestLastWriteWinsProperty(t *testing.T) {
	f := func(ops []uint32, qs, qc uint8) bool {
		m := New()
		frontier := int64(1 << 20)
		for _, op := range ops {
			start := int64(op % 1000)
			count := int64(op%64 + 1)
			m.Insert(geom.Ext(start, count), frontier)
			frontier += count
		}
		q := geom.Ext(int64(qs), int64(qc%32+1))
		m.Insert(q, frontier)
		got := m.Lookup(q)
		if len(got) != 1 {
			return false
		}
		return got[0].Pba == frontier && got[0].Lba == q && !got[0].Identity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Lookup always tiles the query exactly — fragments are in
// order, non-overlapping in LBA, and their union is the query.
func TestLookupTilesQueryProperty(t *testing.T) {
	f := func(ops []uint32, qs uint16, qc uint8) bool {
		m := New()
		frontier := int64(1 << 20)
		for _, op := range ops {
			m.Insert(geom.Ext(int64(op%2000), int64(op%64+1)), frontier)
			frontier += int64(op%64 + 1)
		}
		q := geom.Ext(int64(qs%2100), int64(qc)+1)
		cur := q.Start
		for _, r := range m.Lookup(q) {
			if r.Lba.Start != cur || r.Lba.Empty() {
				return false
			}
			cur = r.Lba.End()
		}
		return cur == q.End()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMappedSectors(t *testing.T) {
	m := New()
	m.Insert(geom.Ext(0, 10), 100)
	m.Insert(geom.Ext(5, 10), 200) // overlaps 5 sectors
	if got := m.MappedSectors(); got != 15 {
		t.Fatalf("MappedSectors = %d, want 15", got)
	}
}

func TestInsertReturnsDisplaced(t *testing.T) {
	m := New()
	m.Insert(geom.Ext(0, 100), 1000)
	displaced := m.Insert(geom.Ext(40, 20), 2000)
	if len(displaced) != 1 {
		t.Fatalf("displaced = %v", displaced)
	}
	if displaced[0].Lba != geom.Ext(40, 20) || displaced[0].Pba != 1040 {
		t.Errorf("displaced piece = %+v", displaced[0])
	}
	// Overwriting a range spanning two mappings displaces two pieces.
	displaced = m.Insert(geom.Ext(30, 20), 3000)
	if len(displaced) != 2 {
		t.Fatalf("displaced = %v", displaced)
	}
	if displaced[0].Lba != geom.Ext(30, 10) || displaced[0].Pba != 1030 {
		t.Errorf("piece 0 = %+v", displaced[0])
	}
	if displaced[1].Lba != geom.Ext(40, 10) || displaced[1].Pba != 2000 {
		t.Errorf("piece 1 = %+v", displaced[1])
	}
	// Writing unmapped space displaces nothing.
	if d := m.Insert(geom.Ext(5000, 10), 4000); d != nil {
		t.Errorf("unmapped insert displaced %v", d)
	}
}

func TestDelete(t *testing.T) {
	m := New()
	m.Insert(geom.Ext(0, 100), 1000)
	removed := m.Delete(geom.Ext(40, 20))
	if len(removed) != 1 || removed[0].Lba != geom.Ext(40, 20) || removed[0].Pba != 1040 {
		t.Fatalf("removed = %v", removed)
	}
	// The hole resolves to identity now.
	got := m.Lookup(geom.Ext(40, 20))
	if len(got) != 1 || !got[0].Identity {
		t.Fatalf("after delete Lookup = %v", got)
	}
	// Surrounding pieces survive with correct placement.
	got = m.Lookup(geom.Ext(0, 40))
	if len(got) != 1 || got[0].Pba != 1000 {
		t.Fatalf("prefix = %v", got)
	}
	got = m.Lookup(geom.Ext(60, 40))
	if len(got) != 1 || got[0].Pba != 1060 {
		t.Fatalf("suffix = %v", got)
	}
	if m.Delete(geom.Extent{}) != nil {
		t.Error("empty delete should be nil")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: total displaced sectors on insert equal previously mapped
// sectors in the overwritten range.
func TestDisplacedConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New()
	frontier := int64(1 << 20)
	mapped := newSectorModel(2000)
	for i := 0; i < 3000; i++ {
		e := geom.Ext(int64(rng.Intn(1900)), int64(1+rng.Intn(64)))
		var want int64
		for s := e.Start; s < e.End(); s++ {
			if mapped[s] >= 0 {
				want++
			}
		}
		displaced := m.Insert(e, frontier)
		var got int64
		for _, d := range displaced {
			got += d.Lba.Count
		}
		if got != want {
			t.Fatalf("step %d: displaced %d sectors, want %d", i, got, want)
		}
		mapped.insert(e, frontier)
		frontier += e.Count
	}
}

func TestCoalescedInsertMergesNeighbors(t *testing.T) {
	m := NewCoalesced()
	// Sequential log writes: LBA-adjacent and PBA-contiguous — one mapping.
	m.Insert(geom.Ext(10, 5), 1000)
	m.Insert(geom.Ext(15, 5), 1005)
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after coalescing", m.Len())
	}
	got := m.Lookup(geom.Ext(10, 10))
	if len(got) != 1 || got[0].Lba != geom.Ext(10, 10) || got[0].Pba != 1000 {
		t.Fatalf("Lookup = %v", got)
	}
	// A gap-filling write merges with BOTH neighbours.
	m2 := NewCoalesced()
	m2.Insert(geom.Ext(0, 4), 2000)
	m2.Insert(geom.Ext(8, 4), 2008)
	if m2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m2.Len())
	}
	m2.Insert(geom.Ext(4, 4), 2004)
	if m2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after bridging insert", m2.Len())
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// LBA-adjacent but physically discontiguous mappings stay separate.
	m3 := NewCoalesced()
	m3.Insert(geom.Ext(0, 4), 3000)
	m3.Insert(geom.Ext(4, 4), 9000)
	if m3.Len() != 2 {
		t.Fatalf("Len = %d, want 2 for discontiguous neighbours", m3.Len())
	}
	if err := m3.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescedAgainstSectorModel replays the randomized sector-model
// workload against a coalescing map: Lookup results must be unchanged by
// coalescing, and the coalesced invariant must hold throughout.
func TestCoalescedAgainstSectorModel(t *testing.T) {
	const space = 400
	rng := rand.New(rand.NewSource(11))
	m := NewCoalesced()
	model := newSectorModel(space)
	frontier := int64(space)
	for step := 0; step < 4000; step++ {
		e := geom.Ext(int64(rng.Intn(space-30)), int64(1+rng.Intn(30)))
		if rng.Intn(2) == 0 {
			m.Insert(e, frontier)
			model.insert(e, frontier)
			frontier += e.Count
		} else {
			got := m.Lookup(e)
			want := model.resolve(e)
			if len(got) != len(want) {
				t.Fatalf("step %d: Lookup(%v) = %v, want %v", step, e, got, want)
			}
			for i := range got {
				if !resolveEq(got[i], want[i]) {
					t.Fatalf("step %d: fragment %d = %+v, want %+v", step, i, got[i], want[i])
				}
			}
		}
		if step%200 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceAtSectorZero(t *testing.T) {
	m := NewCoalesced()
	m.Insert(geom.Ext(0, 4), 1000) // start-1 == -1 must not trip the neighbour query
	m.Insert(geom.Ext(4, 4), 1004)
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiffAndEqual(t *testing.T) {
	a, b := New(), New()
	if !a.Equal(b) {
		t.Fatal("two empty maps must be equal")
	}
	a.Insert(geom.Ext(0, 10), 1000)
	b.Insert(geom.Ext(0, 10), 1000)
	if d := a.Diff(b); d != "" {
		t.Fatalf("identical maps differ: %s", d)
	}
	b.Insert(geom.Ext(20, 5), 2000)
	if a.Equal(b) {
		t.Fatal("maps with different counts must differ")
	}
	a.Insert(geom.Ext(20, 5), 2001) // same shape, different PBA
	if d := a.Diff(b); d == "" {
		t.Fatal("maps with different PBAs must differ")
	}
	// Same contents built in a different insertion order are equal.
	c, d := New(), New()
	c.Insert(geom.Ext(0, 10), 100)
	c.Insert(geom.Ext(50, 10), 200)
	d.Insert(geom.Ext(50, 10), 200)
	d.Insert(geom.Ext(0, 10), 100)
	if !c.Equal(d) {
		t.Fatalf("order-independent equality failed: %s", c.Diff(d))
	}
}
