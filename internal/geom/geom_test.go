package geom

import (
	"testing"
	"testing/quick"
)

func TestExtBasics(t *testing.T) {
	e := Ext(10, 5)
	if e.End() != 15 {
		t.Errorf("End = %d, want 15", e.End())
	}
	if e.Empty() {
		t.Error("Ext(10,5) should not be empty")
	}
	if e.Bytes() != 5*SectorSize {
		t.Errorf("Bytes = %d, want %d", e.Bytes(), 5*SectorSize)
	}
	if (Extent{}).Empty() != true {
		t.Error("zero extent must be empty")
	}
	if got := e.String(); got != "[10,15)" {
		t.Errorf("String = %q", got)
	}
}

func TestSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Span(5,3) should panic")
		}
	}()
	Span(5, 3)
}

func TestContains(t *testing.T) {
	e := Ext(10, 5)
	cases := []struct {
		s    Sector
		want bool
	}{{9, false}, {10, true}, {14, true}, {15, false}}
	for _, c := range cases {
		if got := e.Contains(c.s); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestContainsExtent(t *testing.T) {
	e := Ext(10, 10)
	if !e.ContainsExtent(Ext(10, 10)) {
		t.Error("extent should contain itself")
	}
	if !e.ContainsExtent(Ext(12, 3)) {
		t.Error("should contain interior")
	}
	if e.ContainsExtent(Ext(5, 10)) {
		t.Error("should not contain straddling extent")
	}
	if !e.ContainsExtent(Extent{}) {
		t.Error("empty extent contained in anything")
	}
}

func TestOverlapsIntersect(t *testing.T) {
	cases := []struct {
		a, b Extent
		want Extent
	}{
		{Ext(0, 10), Ext(5, 10), Ext(5, 5)},
		{Ext(0, 10), Ext(10, 5), Extent{}},
		{Ext(0, 10), Ext(20, 5), Extent{}},
		{Ext(5, 5), Ext(0, 20), Ext(5, 5)},
		{Ext(0, 0), Ext(0, 5), Extent{}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if c.a.Overlaps(c.b) != !c.want.Empty() {
			t.Errorf("Overlaps(%v,%v) inconsistent with Intersect", c.a, c.b)
		}
		// Symmetry.
		if got2 := c.b.Intersect(c.a); got2 != got {
			t.Errorf("Intersect not symmetric: %v vs %v", got, got2)
		}
	}
}

func TestSubtract(t *testing.T) {
	cases := []struct {
		a, b Extent
		want []Extent
	}{
		{Ext(0, 10), Ext(20, 5), []Extent{Ext(0, 10)}},          // disjoint
		{Ext(0, 10), Ext(0, 10), nil},                           // exact
		{Ext(0, 10), Ext(0, 5), []Extent{Ext(5, 5)}},            // prefix
		{Ext(0, 10), Ext(5, 5), []Extent{Ext(0, 5)}},            // suffix
		{Ext(0, 10), Ext(3, 4), []Extent{Ext(0, 3), Ext(7, 3)}}, // split
		{Ext(5, 5), Ext(0, 20), nil},                            // swallowed
	}
	for _, c := range cases {
		got := c.a.Subtract(c.b)
		if len(got) != len(c.want) {
			t.Errorf("%v - %v = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v - %v = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestUnion(t *testing.T) {
	if u, ok := Ext(0, 5).Union(Ext(5, 5)); !ok || u != Ext(0, 10) {
		t.Errorf("adjacent union = %v,%v", u, ok)
	}
	if u, ok := Ext(0, 5).Union(Ext(3, 5)); !ok || u != Ext(0, 8) {
		t.Errorf("overlap union = %v,%v", u, ok)
	}
	if _, ok := Ext(0, 5).Union(Ext(6, 5)); ok {
		t.Error("disjoint union should fail")
	}
	if u, ok := (Extent{}).Union(Ext(6, 5)); !ok || u != Ext(6, 5) {
		t.Error("union with empty should yield other")
	}
}

func TestShiftClamp(t *testing.T) {
	if got := Ext(10, 5).Shift(-3); got != Ext(7, 5) {
		t.Errorf("Shift = %v", got)
	}
	if got := Ext(0, 100).Clamp(Ext(10, 5)); got != Ext(10, 5) {
		t.Errorf("Clamp = %v", got)
	}
}

// Property: subtracting b from a then intersecting the pieces with b is
// always empty, and the pieces plus the intersection cover a exactly.
func TestSubtractProperty(t *testing.T) {
	f := func(as, ac, bs, bc uint16) bool {
		a := Ext(int64(as), int64(ac%200))
		b := Ext(int64(bs), int64(bc%200))
		pieces := a.Subtract(b)
		var covered int64
		for _, p := range pieces {
			if p.Empty() {
				return false
			}
			if p.Overlaps(b) {
				return false
			}
			if !a.ContainsExtent(p) {
				return false
			}
			covered += p.Count
		}
		covered += a.Intersect(b).Count
		return covered == max64(a.Count, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Intersect is commutative and contained in both operands.
func TestIntersectProperty(t *testing.T) {
	f := func(as, ac, bs, bc uint16) bool {
		a := Ext(int64(as), int64(ac%200))
		b := Ext(int64(bs), int64(bc%200))
		ab := a.Intersect(b)
		if ab != b.Intersect(a) {
			return false
		}
		if ab.Empty() {
			return true
		}
		return a.ContainsExtent(ab) && b.ContainsExtent(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
