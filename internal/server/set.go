package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"smrseek/internal/core"
	"smrseek/internal/trace"
)

// Set is a replica-aware client over a fixed set of node addresses. It
// routes every operation to the current primary; when the primary dies
// (connection error) or demotes (StatusNotPrimary), it re-probes the
// set, promotes the most-caught-up follower if no primary answers, and
// resends the operation — at-least-once semantics, exactly like
// Client.Step's reconnect path.
//
// Like Client, a Set is not safe for concurrent use; open one per
// goroutine.
type Set struct {
	ctx   context.Context
	addrs []string
	c     *Client // connection to the current primary
	cur   string  // current primary's address
	epoch uint64  // highest fencing epoch observed

	// FailoverAttempts bounds how many probe-the-set rounds one
	// operation may spend before its error surfaces.
	FailoverAttempts int
	// ProbeTimeout bounds dialing one candidate during a probe round.
	ProbeTimeout time.Duration

	failovers  int64
	recoveries []time.Duration
	lastOK     time.Time
}

// DialSet probes addrs, connects to the serving primary (the one with
// the highest fencing epoch), and returns a Set routing to it. If no
// node claims the primary role, the most-caught-up follower is promoted
// — the same path a mid-run failover takes.
func DialSet(ctx context.Context, addrs []string) (*Set, error) {
	if len(addrs) == 0 {
		return nil, errors.New("smrd: DialSet needs at least one address")
	}
	s := &Set{
		ctx:              ctx,
		addrs:            append([]string(nil), addrs...),
		FailoverAttempts: 8,
		ProbeTimeout:     2 * time.Second,
	}
	if err := s.failover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Primary returns the address of the node currently serving as primary.
func (s *Set) Primary() string { return s.cur }

// Reroute re-probes the set and re-elects (promoting a follower if
// needed) the serving primary, for callers that hold their own data
// connection — the pipelined load driver dials an AsyncClient at
// Primary() and calls Reroute when that connection dies or demotes.
// The caller owns failover accounting; Failovers is not incremented.
func (s *Set) Reroute() error { return s.failover() }

// Epoch returns the highest fencing epoch the set has observed.
func (s *Set) Epoch() uint64 { return s.epoch }

// Failovers returns how many times the set has re-routed to a new
// primary after the old one died or demoted.
func (s *Set) Failovers() int64 { return s.failovers }

// Recoveries returns the observed time-to-recovery of each failover:
// the gap between the last pre-failover success and the first
// post-failover success.
func (s *Set) Recoveries() []time.Duration { return s.recoveries }

// Close closes the current primary connection.
func (s *Set) Close() error {
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// needsFailover reports whether err means "this node can no longer
// serve": a broken connection or a not-primary rejection. Everything
// else — overload, corruption, bad requests — surfaces to the caller.
func needsFailover(err error) bool {
	if isConnError(err) {
		return true
	}
	var se *StatusError
	return errors.As(err, &se) && se.Status == StatusNotPrimary
}

// do runs op against the current primary, failing over and resending on
// a dead or demoted node. At-least-once: an op whose response was lost
// in flight may have executed on the old primary too.
func (s *Set) do(op func(c *Client) error) error {
	err := op(s.c)
	if !needsFailover(err) {
		return err
	}
	wasOK := s.lastOK
	for attempt := 0; attempt < s.FailoverAttempts; attempt++ {
		if s.ctx.Err() != nil {
			return err
		}
		if ferr := s.failover(); ferr != nil {
			continue
		}
		err = op(s.c)
		if err == nil {
			s.failovers++
			if !wasOK.IsZero() {
				s.recoveries = append(s.recoveries, time.Since(wasOK))
			}
			return nil
		}
		if !needsFailover(err) {
			return err
		}
	}
	return err
}

// candidate is one probed node.
type candidate struct {
	addr string
	c    *Client
	info RoleInfo
}

// failover probes every address, closes the current connection, and
// routes to the best candidate: the primary with the highest epoch if
// one answers, else the most-caught-up follower, which it promotes.
func (s *Set) failover() error {
	if s.c != nil {
		s.c.Close()
		s.c = nil
	}
	var cands []candidate
	defer func() {
		for _, cd := range cands {
			if cd.c != nil {
				cd.c.Close()
			}
		}
	}()
	for _, addr := range s.addrs {
		ctx, cancel := context.WithTimeout(s.ctx, s.ProbeTimeout)
		c, err := DialContext(ctx, addr)
		cancel()
		if err != nil {
			continue
		}
		// Probing must not hang on a half-dead node.
		c.SetReconnect(ReconnectPolicy{})
		info, err := c.Role()
		if err != nil {
			c.Close()
			continue
		}
		cands = append(cands, candidate{addr: addr, c: c, info: info})
	}
	if len(cands) == 0 {
		return fmt.Errorf("smrd: no node of %v reachable", s.addrs)
	}

	// A live primary with the highest epoch wins outright.
	best := -1
	for i, cd := range cands {
		if cd.info.Role != "primary" {
			continue
		}
		if best < 0 || moreCaughtUp(cd.info, cands[best].info) {
			best = i
		}
	}
	if best < 0 {
		// No primary: promote the most-caught-up follower.
		for i, cd := range cands {
			if cd.info.Role != "follower" {
				continue
			}
			if best < 0 || moreCaughtUp(cd.info, cands[best].info) {
				best = i
			}
		}
		if best < 0 {
			return fmt.Errorf("smrd: no primary and no promotable follower among %v", s.addrs)
		}
		info, err := cands[best].c.Promote()
		if err != nil {
			return fmt.Errorf("smrd: promote %s: %w", cands[best].addr, err)
		}
		cands[best].info = info
	}
	if e := cands[best].info.Epoch; e < s.epoch {
		return fmt.Errorf("smrd: best candidate %s at stale epoch %d (< %d seen)",
			cands[best].addr, e, s.epoch)
	}
	chosen := cands[best]
	cands[best].c = nil // keep it out of the deferred close
	chosen.c.SetReconnect(ReconnectPolicy{MaxAttempts: 2, Base: 25 * time.Millisecond, Max: 100 * time.Millisecond})
	s.c = chosen.c
	s.cur = chosen.addr
	s.epoch = chosen.info.Epoch
	return nil
}

// moreCaughtUp reports whether node a is more caught-up than node b:
// higher epoch first, then per-volume journal positions compared over
// the union of volume names (a volume one side lacks counts as the zero
// position).
func moreCaughtUp(a, b RoleInfo) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	names := map[string]bool{}
	for n := range a.Volumes {
		names[n] = true
	}
	for n := range b.Volumes {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	ahead := 0
	for _, n := range ordered {
		pa, pb := a.Volumes[n], b.Volumes[n]
		if pb.Less(pa) {
			ahead++
		} else if pa.Less(pb) {
			ahead--
		}
	}
	return ahead > 0
}

// Step routes one trace record to the primary, failing over on a dead
// or demoted node. Returns a read's fragment count (0 for writes).
func (s *Set) Step(vol string, rec trace.Record) (int, error) {
	var n int
	err := s.do(func(c *Client) error {
		var e error
		n, e = c.Step(vol, rec)
		return e
	})
	if err == nil {
		s.lastOK = time.Now()
	}
	return n, err
}

// Stat returns the primary's live statistics for the volume.
func (s *Set) Stat(vol string) (core.Stats, error) {
	var st core.Stats
	err := s.do(func(c *Client) error {
		var e error
		st, e = c.Stat(vol)
		return e
	})
	return st, err
}

// Snapshot forces a journal checkpoint on the primary's volume.
func (s *Set) Snapshot(vol string) error {
	return s.do(func(c *Client) error { return c.Snapshot(vol) })
}

// Replay streams every record of r through Step in order, returning the
// op count.
func (s *Set) Replay(vol string, r trace.Reader) (int64, error) {
	var n int64
	for {
		rec, ok := r.Next()
		if !ok {
			return n, r.Err()
		}
		if _, err := s.Step(vol, rec); err != nil {
			return n, err
		}
		n++
	}
}
