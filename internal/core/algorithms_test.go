package core

// Correspondence tests tying the simulator's behaviour to the paper's
// pseudo-code, line by line:
//
//	Algorithm 1 (opportunistic defragmentation): on read → DoRead; if
//	  FragmentedRead → WriteAtLogHead(extent).
//	Algorithm 2 (look-ahead-behind prefetching): per LBA piece of a
//	  fragmented read → PreFetch(region); DoRead(pba); PostFetch(region).
//	Algorithm 3 (selective caching): per fragment of a fragmented read →
//	  if CheckCache → ReadCache else ReadDisk + WriteCache.

import (
	"testing"

	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// fragmentize writes a base extent then punches it with updates so a
// read of base resolves to several fragments.
func fragmentize(sim *Simulator, base geom.Extent, cuts ...geom.Sector) {
	sim.Step(wr(base.Start, base.Count))
	for _, c := range cuts {
		sim.Step(wr(c, 1))
	}
}

func TestAlgorithm1WriteAtLogHeadSemantics(t *testing.T) {
	d := DefaultDefragConfig()
	sim := mustSim(t, Config{LogStructured: true, FrontierStart: 10000, Defrag: &d})
	fragmentize(sim, geom.Ext(0, 100), 10, 50)
	frontierBefore := sim.LS().Frontier()
	sim.Step(rd(0, 100)) // FragmentedRead == True → WriteAtLogHead(IOextent)
	// Line 6 of Algorithm 1: the whole *read extent* is rewritten at the
	// log head — the map must now resolve it as one fragment at the old
	// frontier.
	frs := sim.LS().Resolve(geom.Ext(0, 100))
	if len(frs) != 1 {
		t.Fatalf("after write-back Resolve = %v", frs)
	}
	if frs[0].Pba != frontierBefore {
		t.Errorf("write-back landed at %d, want log head %d", frs[0].Pba, frontierBefore)
	}
	if sim.LS().Frontier() != frontierBefore+100 {
		t.Errorf("frontier advanced to %d, want %d", sim.LS().Frontier(), frontierBefore+100)
	}
	// An UNfragmented read must not trigger a write-back (line 5 guard).
	before := sim.Stats().DefragWritebacks
	sim.Step(rd(0, 100))
	if sim.Stats().DefragWritebacks != before {
		t.Error("unfragmented read triggered a write-back")
	}
}

func TestAlgorithm2PrefetchRegionSemantics(t *testing.T) {
	// Build a layout where two fragments are physically adjacent in the
	// log but a third is far away: the window must cover only the near
	// one.
	p := PrefetchConfig{LookBehindSectors: 4, LookAheadSectors: 4, BufferBytes: 1 << 20}
	sim := mustSim(t, Config{LogStructured: true, FrontierStart: 10000, Prefetch: &p})
	// Log layout: [A][B] adjacent, then 5000 sectors of padding, then [C].
	sim.Step(wr(0, 4))       // A at 10000
	sim.Step(wr(8, 4))       // B at 10004 (within ±4 of A's end)
	sim.Step(wr(5000, 5000)) // padding advances the frontier
	sim.Step(wr(16, 4))      // C at 20008, far from A and B
	// Read LBA 0..20: fragments A(10000), identity(4..8), B(10004),
	// identity(12..16), C(20008), identity(20)... The read of A fills
	// [10000-4, 10000+4+4) covering B → B is a buffer hit; C is not.
	sim.Step(rd(0, 24))
	st := sim.Stats()
	if st.PrefetchHits == 0 {
		t.Fatal("adjacent fragment not served from the window")
	}
	if st.PrefetchHits > 1 {
		t.Fatalf("PrefetchHits = %d; the far fragment must not hit", st.PrefetchHits)
	}
}

func TestAlgorithm3CheckCacheThenDisk(t *testing.T) {
	c := CacheConfig{CapacityBytes: 1 << 20}
	sim := mustSim(t, Config{LogStructured: true, FrontierStart: 10000, Cache: &c})
	fragmentize(sim, geom.Ext(0, 64), 7, 31)
	// First fragmented read: every fragment is a CheckCache miss →
	// ReadDisk + WriteCache for each.
	sim.Step(rd(0, 64))
	st := sim.Stats()
	if st.CacheHits != 0 {
		t.Fatalf("first read hits = %d", st.CacheHits)
	}
	misses := st.CacheMisses
	if misses == 0 {
		t.Fatal("no cache misses recorded on first fragmented read")
	}
	diskSectors := st.Disk.ReadSectors
	// Second identical read: every fragment is a hit; no disk I/O at all.
	sim.Step(rd(0, 64))
	st = sim.Stats()
	if st.CacheHits != misses {
		t.Errorf("second read hits = %d, want %d (one per fragment)", st.CacheHits, misses)
	}
	if st.Disk.ReadSectors != diskSectors {
		t.Error("cached fragments still touched the disk")
	}
}

// TestEndToEndDeterminism: two full instrumented runs over the same
// workload must agree on every statistic.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() Stats {
		recs := []trace.Record{}
		seed := uint64(123)
		for i := 0; i < 3000; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			ext := geom.Ext(int64(seed%50000), int64(seed%64+1))
			k := rd(ext.Start, ext.Count)
			if seed%4 == 0 {
				k = wr(ext.Start, ext.Count)
			}
			recs = append(recs, k)
		}
		d, p, c := DefaultDefragConfig(), DefaultPrefetchConfig(), DefaultCacheConfig()
		st := run_(t, Config{LogStructured: true, FrontierStart: 60000, Defrag: &d, Prefetch: &p, Cache: &c}, recs)
		return st
	}
	a, b := run(), run()
	a.Config, b.Config = Config{}, Config{} // pointers differ; compare the rest
	if a != b {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

func run_(t *testing.T, cfg Config, recs []trace.Record) Stats {
	t.Helper()
	sim := mustSim(t, cfg)
	st, err := sim.Run(trace.NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}
	return st
}
