package workload

import (
	"fmt"

	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

// Source tags which trace family a synthetic workload stands in for.
type Source int

const (
	// MSR marks stand-ins for the MSR Cambridge traces.
	MSR Source = iota
	// CloudPhysics marks stand-ins for the CloudPhysics traces.
	CloudPhysics
)

// String names the source family.
func (s Source) String() string {
	if s == MSR {
		return "MSR"
	}
	return "CloudPhysics"
}

// Profile parameterizes the composite workload engine. Each named
// workload in the catalog is one Profile whose knobs reproduce the
// qualitative behaviour the paper reports for the trace of the same name:
// write intensity (Table I), fragmentation-driving updates, repeated or
// roaming scans, hot-range reuse (Figure 10 skew), temporal-order reads,
// mis-ordered write bursts (Figures 7–8) and diurnal phasing (Figure 3).
type Profile struct {
	Name   string
	Source Source
	OS     string // Table I's OS column, for reporting
	Seed   uint64

	// BaseOps is the approximate record count at scale 1.0.
	BaseOps int
	// WriteFrac is the fraction of operations that are writes.
	WriteFrac float64

	// RegionSectors is the LBA span of the simulated device usage.
	RegionSectors int64
	// WriteSectors / ReadSectors are mean bulk I/O sizes.
	WriteSectors int64
	ReadSectors  int64

	// Hot working set: HotRanges ranges of HotRangeSectors each receive
	// HotReadFrac of reads, rank-skewed by HotZipf. Updates fragment
	// them; re-reads make caching (and defrag) pay off.
	HotRanges       int
	HotRangeSectors int64
	HotReadFrac     float64
	HotZipf         float64

	// UpdateFrac of writes are UpdateSectors-sized random updates into
	// hot ranges or scan territory — the fragmentation source.
	UpdateFrac    float64
	UpdateSectors int64
	// UpdateHotBias is the probability an update targets a hot range
	// rather than the scan span. Low bias sends fragmentation to
	// scan-once territory, where defragmentation pays its frontier seek
	// and never collects (the w20 shape).
	UpdateHotBias float64

	// ScanFrac of reads are sequential ScanChunk-sized pieces. With
	// ScanRepeat the scan loops over one ScanSpanSectors region (re-reads
	// amortize defrag/cache); without it the scan roams fresh territory
	// (fragmented ranges are read once — defrag pays and never collects).
	ScanFrac        float64
	ScanChunk       int64
	ScanSpanSectors int64
	ScanRepeat      bool

	// TemporalFrac of reads replay recently written extents in write
	// order — the log-friendly pattern that *reduces* read seeks under LS.
	TemporalFrac float64

	// OverlapReadFrac of reads are ReadSectors-sized reads at *random*
	// offsets within the scan span. Their boundaries never align, so an
	// opportunistic defragmenter that writes each read range back to the
	// frontier fragments the neighbouring, overlapping ranges — the
	// paper's t_F effect (Figure 6) — and churns: this is what makes
	// defrag a net loss on workloads like w20 (§V).
	OverlapReadFrac float64

	// MisorderFrac of write operations are emitted as mis-ordered bursts
	// of MisorderChunks × MisorderChunk sectors in the given pattern,
	// aimed at scan territory so look-ahead-behind prefetching can repair
	// them (Figure 9).
	MisorderFrac    float64
	MisorderChunks  int
	MisorderChunk   int64
	MisorderPattern MisorderPattern

	// Phases > 1 modulates read/write emphasis across the run in
	// Phases alternating half-day-like segments (Figure 3's swings).
	Phases int
}

// Validate reports obviously broken profiles.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without a name")
	}
	if p.BaseOps <= 0 {
		return fmt.Errorf("workload %s: BaseOps must be positive", p.Name)
	}
	if p.RegionSectors <= 0 {
		return fmt.Errorf("workload %s: RegionSectors must be positive", p.Name)
	}
	if p.WriteFrac < 0 || p.WriteFrac > 1 {
		return fmt.Errorf("workload %s: WriteFrac out of [0,1]", p.Name)
	}
	for _, f := range []float64{p.HotReadFrac, p.ScanFrac, p.TemporalFrac, p.OverlapReadFrac, p.UpdateFrac, p.MisorderFrac, p.UpdateHotBias} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload %s: fraction out of [0,1]", p.Name)
		}
	}
	if p.HotReadFrac+p.ScanFrac+p.TemporalFrac+p.OverlapReadFrac > 1 {
		return fmt.Errorf("workload %s: read fractions sum beyond 1", p.Name)
	}
	return nil
}

// Generate produces the workload's record stream at the given scale
// (1.0 ≈ BaseOps operations). Same profile + scale ⇒ identical stream.
func (p Profile) Generate(scale float64) []trace.Record {
	if scale <= 0 {
		scale = 1
	}
	ops := int(float64(p.BaseOps) * scale)
	if ops < 100 {
		ops = 100
	}
	g := newGenState(p)
	for g.b.Len() < ops {
		g.step(ops)
	}
	return g.b.Records()
}

// genState is the running state of the composite engine.
type genState struct {
	p   Profile
	rng *RNG
	b   *Builder

	hot     []geom.Extent
	hotZipf *Zipf

	scanCursor geom.Sector
	scanBase   geom.Sector
	scanSpan   int64

	// temporal replay queue of recently written extents.
	replay []geom.Extent
}

const maxReplayQueue = 8192

func newGenState(p Profile) *genState {
	g := &genState{p: p, rng: NewRNG(p.Seed), b: NewBuilder(0)}
	if p.HotRanges > 0 {
		size := p.HotRangeSectors
		if size <= 0 {
			size = 256
		}
		for i := 0; i < p.HotRanges; i++ {
			start := g.rng.Int63n(max64(p.RegionSectors-size, 1))
			g.hot = append(g.hot, geom.Ext(start, size))
		}
		z := p.HotZipf
		if z <= 0 {
			z = 1.0
		}
		g.hotZipf = NewZipf(g.rng, p.HotRanges, z)
	}
	g.scanSpan = p.ScanSpanSectors
	if g.scanSpan <= 0 {
		g.scanSpan = p.RegionSectors / 4
	}
	if g.scanSpan > p.RegionSectors {
		g.scanSpan = p.RegionSectors
	}
	g.scanBase = g.rng.Int63n(max64(p.RegionSectors-g.scanSpan+1, 1))
	g.scanCursor = g.scanBase
	return g
}

// writeFracAt modulates write emphasis across diurnal phases.
func (g *genState) writeFracAt(totalOps int) float64 {
	w := g.p.WriteFrac
	if g.p.Phases <= 1 || totalOps == 0 {
		return w
	}
	phase := g.b.Len() * g.p.Phases / totalOps
	if phase%2 == 0 {
		w *= 1.5
	} else {
		w *= 0.5
	}
	if w > 0.95 {
		w = 0.95
	}
	return w
}

// writeDecisionProb converts a target *record-level* write fraction into
// the per-step decision probability, compensating for mis-ordered bursts
// that emit several write records from a single decision.
func (g *genState) writeDecisionProb(recordFrac float64) float64 {
	e := 1.0 // expected records per write decision
	if g.p.MisorderChunks > 0 {
		e = g.p.MisorderFrac*float64(g.p.MisorderChunks) + (1 - g.p.MisorderFrac)
	}
	denom := e*(1-recordFrac) + recordFrac
	if denom <= 0 {
		return recordFrac
	}
	return recordFrac / denom
}

func (g *genState) step(totalOps int) {
	if g.rng.Bool(g.writeDecisionProb(g.writeFracAt(totalOps))) {
		g.stepWrite()
	} else {
		g.stepRead()
	}
}

func (g *genState) stepWrite() {
	p := g.p
	r := g.rng.Float64()
	switch {
	case r < p.MisorderFrac && p.MisorderChunks > 0:
		g.misorderBurst()
	case r < p.MisorderFrac+p.UpdateFrac:
		g.update()
	default:
		g.bulkWrite()
	}
}

// misorderBurst writes a contiguous range inside the scan span (so a
// later scan crosses it) in a non-ascending order.
func (g *genState) misorderBurst() {
	p := g.p
	chunk := p.MisorderChunk
	if chunk <= 0 {
		chunk = 16
	}
	span := int64(p.MisorderChunks) * chunk
	limit := max64(g.scanSpan-span, 1)
	start := g.scanBase + g.rng.Int63n(limit)
	pat := p.MisorderPattern
	if pat == Shuffled {
		g.b.MisorderedWrite(start, p.MisorderChunks, chunk, Shuffled, g.rng)
	} else {
		g.b.MisorderedWrite(start, p.MisorderChunks, chunk, pat, nil)
	}
	g.noteWrite(geom.Ext(start, span))
}

// update issues one small write into hot or scan territory, fragmenting
// whatever read range covers it.
func (g *genState) update() {
	p := g.p
	size := p.UpdateSectors
	if size <= 0 {
		size = 8
	}
	var target geom.Extent
	if len(g.hot) > 0 && g.rng.Bool(p.UpdateHotBias) {
		// Updates pick hot ranges uniformly, NOT by read popularity:
		// correlating update and read skew would compound fragmentation
		// on the hottest range far beyond anything in the traces.
		target = g.hot[g.rng.Intn(len(g.hot))]
	} else {
		target = geom.Ext(g.scanBase, g.scanSpan)
	}
	if target.Count <= size {
		g.b.WriteExtent(target)
		g.noteWrite(target)
		return
	}
	off := g.rng.Int63n(target.Count - size)
	e := geom.Ext(target.Start+off, size)
	g.b.WriteExtent(e)
	g.noteWrite(e)
}

// bulkWrite is a plain write at a uniform position.
func (g *genState) bulkWrite() {
	p := g.p
	size := p.WriteSectors
	if size <= 0 {
		size = 64
	}
	// Vary size ±50% for a realistic mix.
	size = size/2 + g.rng.Int63n(size)
	start := g.rng.Int63n(max64(p.RegionSectors-size, 1))
	e := geom.Ext(start, size)
	g.b.WriteExtent(e)
	g.noteWrite(e)
}

func (g *genState) noteWrite(e geom.Extent) {
	if g.p.TemporalFrac <= 0 {
		return
	}
	g.replay = append(g.replay, e)
	if len(g.replay) > maxReplayQueue {
		g.replay = g.replay[len(g.replay)-maxReplayQueue:]
	}
}

func (g *genState) stepRead() {
	p := g.p
	r := g.rng.Float64()
	switch {
	case r < p.HotReadFrac && len(g.hot) > 0:
		g.b.ReadExtent(g.hot[g.hotZipf.Next()])
	case r < p.HotReadFrac+p.ScanFrac:
		g.scanChunkRead()
	case r < p.HotReadFrac+p.ScanFrac+p.TemporalFrac && len(g.replay) > 0:
		// Replay the oldest unread write — reads in write order.
		e := g.replay[0]
		g.replay = g.replay[1:]
		g.b.ReadExtent(e)
	case r < p.HotReadFrac+p.ScanFrac+p.TemporalFrac+p.OverlapReadFrac:
		g.overlapRead()
	default:
		g.uniformRead()
	}
}

// overlapRead reads a randomly-placed extent inside the scan span; such
// reads overlap each other at arbitrary boundaries.
func (g *genState) overlapRead() {
	size := g.p.ReadSectors
	if size <= 0 {
		size = 32
	}
	size = size/2 + g.rng.Int63n(size)
	if size >= g.scanSpan {
		size = max64(g.scanSpan-1, 1)
	}
	off := g.rng.Int63n(g.scanSpan - size)
	g.b.Read(g.scanBase+off, size)
}

// scanChunkRead emits the next sequential chunk of the active scan.
func (g *genState) scanChunkRead() {
	p := g.p
	chunk := p.ScanChunk
	if chunk <= 0 {
		chunk = 256
	}
	if g.scanCursor+chunk > g.scanBase+g.scanSpan {
		// Scan pass finished: loop (ScanRepeat) or walk on to fresh
		// ground. Non-repeating scans advance *sequentially* through the
		// region (wrapping at the end) so ground is not revisited until
		// the whole region has been covered — fragmented ranges really
		// are read once, which is what makes opportunistic defrag a pure
		// cost on these workloads.
		if p.ScanRepeat {
			g.scanCursor = g.scanBase
		} else {
			g.scanBase += g.scanSpan
			if g.scanBase+g.scanSpan > p.RegionSectors {
				g.scanBase = 0
			}
			g.scanCursor = g.scanBase
		}
	}
	g.b.Read(g.scanCursor, chunk)
	g.scanCursor += chunk
}

func (g *genState) uniformRead() {
	p := g.p
	size := p.ReadSectors
	if size <= 0 {
		size = 32
	}
	size = size/2 + g.rng.Int63n(size)
	start := g.rng.Int63n(max64(p.RegionSectors-size, 1))
	g.b.Read(start, size)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
