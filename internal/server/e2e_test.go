package server

// End-to-end determinism: an in-process smrd stack (volumes + TCP server
// + client library) fed the same trace over the wire by N concurrent
// clients must produce per-volume statistics bit-identical to direct
// single-threaded simulator runs. This is the acceptance contract for
// the whole service layer: the network and the actor queue add zero
// behavioral noise.

import (
	"reflect"
	"sync"
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/trace"
	"smrseek/internal/volume"
	"smrseek/internal/workload"
)

func TestE2EConcurrentDeterminism(t *testing.T) {
	p, err := workload.ByName("w91")
	if err != nil {
		t.Fatal(err)
	}
	recs := p.Generate(0.02)
	frontier := core.FrontierFor(recs)

	// Four volumes with distinct optimization stacks: plain LS, defrag,
	// cache, and defrag+cache. Each gets its own client goroutine.
	d := core.DefaultDefragConfig()
	cc := core.DefaultCacheConfig()
	simCfgs := map[string]core.Config{
		"plain":  {LogStructured: true, FrontierStart: frontier},
		"defrag": {LogStructured: true, FrontierStart: frontier, Defrag: &d},
		"cache":  {LogStructured: true, FrontierStart: frontier, Cache: &cc},
		"both":   {LogStructured: true, FrontierStart: frontier, Defrag: &d, Cache: &cc},
	}

	// Reference: direct single-threaded runs, no service layer at all.
	want := make(map[string]core.Stats, len(simCfgs))
	for name, cfg := range simCfgs {
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(trace.NewSliceReader(recs))
		if err != nil {
			t.Fatal(err)
		}
		st.Config = core.Config{}
		want[name] = st
	}

	var volCfgs []volume.Config
	for name, cfg := range simCfgs {
		volCfgs = append(volCfgs, volume.Config{Name: name, Sim: cfg})
	}
	_, _, addr := newTestServer(t, Options{}, volCfgs...)

	// One client per volume, all replaying concurrently over TCP.
	var wg sync.WaitGroup
	got := make(map[string]core.Stats, len(simCfgs))
	var mu sync.Mutex
	for name := range simCfgs {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			defer c.Close()
			n, err := c.Replay(name, trace.NewSliceReader(recs))
			if err != nil {
				t.Errorf("%s: replay: %v", name, err)
				return
			}
			if n != int64(len(recs)) {
				t.Errorf("%s: replayed %d of %d records", name, n, len(recs))
				return
			}
			st, err := c.Stat(name)
			if err != nil {
				t.Errorf("%s: stat: %v", name, err)
				return
			}
			mu.Lock()
			got[name] = st
			mu.Unlock()
		}(name)
	}
	wg.Wait()

	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: no stats collected", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: wire stats diverged from direct run:\n got %+v\nwant %+v", name, g, w)
		}
	}
}
