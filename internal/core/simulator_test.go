package core

import (
	"testing"

	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
)

func rd(lba, n int64) trace.Record {
	return trace.Record{Kind: disk.Read, Extent: geom.Ext(lba, n)}
}

func wr(lba, n int64) trace.Record {
	return trace.Record{Kind: disk.Write, Extent: geom.Ext(lba, n)}
}

func mustSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, cfg Config, recs []trace.Record) Stats {
	t.Helper()
	s := mustSim(t, cfg)
	st, err := s.Run(trace.NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestConfigNameAndValidate(t *testing.T) {
	d, p, c := DefaultDefragConfig(), DefaultPrefetchConfig(), DefaultCacheConfig()
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "NoLS"},
		{Config{LogStructured: true}, "LS"},
		{Config{LogStructured: true, Defrag: &d}, "LS+defrag"},
		{Config{LogStructured: true, Prefetch: &p}, "LS+prefetch"},
		{Config{LogStructured: true, Cache: &c}, "LS+cache"},
		{Config{LogStructured: true, Defrag: &d, Prefetch: &p, Cache: &c}, "LS+defrag+prefetch+cache"},
	}
	for _, tc := range cases {
		if got := tc.cfg.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", tc.want, err)
		}
	}
	if err := (Config{Cache: &c}).Validate(); err == nil {
		t.Error("mechanisms without LS must be rejected")
	}
	if err := (Config{LogStructured: true, FrontierStart: -1}).Validate(); err == nil {
		t.Error("negative frontier must be rejected")
	}
	if _, err := NewSimulator(Config{Defrag: &d}); err == nil {
		t.Error("NewSimulator must validate")
	}
}

func TestNoLSCountsRawSeeks(t *testing.T) {
	// Alternating far-apart reads/writes: every op after the first seeks.
	recs := []trace.Record{rd(0, 8), wr(10000, 8), rd(20000, 8), wr(0, 8)}
	st := run(t, Config{}, recs)
	if st.Disk.ReadSeeks != 1 || st.Disk.WriteSeeks != 2 {
		t.Errorf("seeks = %+v", st.Disk)
	}
	if st.Reads != 2 || st.Writes != 2 {
		t.Errorf("ops = %+v", st)
	}
}

func TestLSEliminatesWriteSeeks(t *testing.T) {
	// Random-LBA writes: NoLS seeks on every write, LS on none (after the
	// first positioning, the frontier advances sequentially).
	var recs []trace.Record
	lbas := []int64{5000, 100, 9000, 42, 7777, 1234}
	for _, l := range lbas {
		recs = append(recs, wr(l, 8))
	}
	base := run(t, Config{}, recs)
	ls := run(t, Config{LogStructured: true, FrontierStart: trace.MaxLBA(recs)}, recs)
	if base.Disk.WriteSeeks != int64(len(lbas)-1) {
		t.Errorf("NoLS write seeks = %d", base.Disk.WriteSeeks)
	}
	if ls.Disk.WriteSeeks != 0 {
		t.Errorf("LS write seeks = %d, want 0", ls.Disk.WriteSeeks)
	}
}

// TestDefragWorkedExample reproduces Figure 6 step by step.
func TestDefragWorkedExample(t *testing.T) {
	// Initial state: LBA 1..6 written contiguously to the log.
	setup := []trace.Record{wr(1, 6)}
	fragWrites := []trace.Record{wr(3, 1), wr(5, 1)}
	read25 := rd(2, 4) // LBA range 2..5 inclusive

	// Without defrag: first read of 2..5 touches 4 fragments (t_C: "three
	// additional seeks" over the one a contiguous read would need), and a
	// re-read costs the same again.
	cfg := Config{LogStructured: true, FrontierStart: 100}
	sim := mustSim(t, cfg)
	for _, r := range append(append([]trace.Record{}, setup...), fragWrites...) {
		sim.Step(r)
	}
	before := sim.Stats().Disk.ReadSeeks
	sim.Step(read25)
	first := sim.Stats().Disk.ReadSeeks - before
	sim.Step(read25)
	second := sim.Stats().Disk.ReadSeeks - before - first
	if first != 4 { // 1 positioning + 3 additional (fig 6 t_C)
		t.Errorf("first read seeks = %d, want 4", first)
	}
	if second != 4 {
		t.Errorf("re-read without defrag seeks = %d, want 4", second)
	}

	// With defrag (t_D): the read triggers a write-back; the re-read
	// (t_E) then costs a single positioning seek and no fragmentation.
	d := DefaultDefragConfig()
	cfgD := Config{LogStructured: true, FrontierStart: 100, Defrag: &d}
	simD := mustSim(t, cfgD)
	for _, r := range append(append([]trace.Record{}, setup...), fragWrites...) {
		simD.Step(r)
	}
	simD.Step(read25)
	st := simD.Stats()
	if st.DefragWritebacks != 1 || st.DefragSectors != 4 {
		t.Fatalf("defrag stats = %+v", st)
	}
	preReread := st.Disk.ReadSeeks
	simD.Step(read25)
	reread := simD.Stats().Disk.ReadSeeks - preReread
	if reread != 1 {
		t.Errorf("re-read after defrag seeks = %d, want 1", reread)
	}
	// t_F: a read of LBA 1..2 now crosses old and new placements — the
	// extra seek defrag imposed.
	preF := simD.Stats().Disk.ReadSeeks
	simD.Step(rd(1, 2))
	if got := simD.Stats().Disk.ReadSeeks - preF; got != 2 {
		t.Errorf("read 1..2 after defrag seeks = %d, want 2", got)
	}
}

// TestPrefetchWorkedExample reproduces Figure 9 step by step.
func TestPrefetchWorkedExample(t *testing.T) {
	// LBA 1..6 in the log, then LBAs 3, 2, 4 updated (t_A..t_C).
	setup := []trace.Record{wr(1, 6), wr(3, 1), wr(2, 1), wr(4, 1)}
	read15 := rd(1, 5) // LBA 1..5

	// Without prefetching (t_D): 5 seeks, "of which 2 are due to
	// fragmentation"... our accounting: fragments are 1 | 2 | 3 | 4 | 5 →
	// phys P1, P8, P7, P9, P5: every fragment access seeks (the write
	// left the head at the frontier) = 5 seeks.
	cfg := Config{LogStructured: true, FrontierStart: 100}
	sim := mustSim(t, cfg)
	for _, r := range setup {
		sim.Step(r)
	}
	sim.Step(read15)
	if got := sim.Stats().Disk.ReadSeeks; got != 5 {
		t.Errorf("read seeks without prefetch = %d, want 5", got)
	}

	// With look-ahead-behind (t_D'): reading LBA 2 (phys middle of the
	// update burst) buffers LBA 3 (behind) and LBA 4 (ahead) → 3 seeks.
	p := PrefetchConfig{LookBehindSectors: 1, LookAheadSectors: 1, BufferBytes: 1 << 20}
	cfgP := Config{LogStructured: true, FrontierStart: 100, Prefetch: &p}
	simP := mustSim(t, cfgP)
	for _, r := range setup {
		simP.Step(r)
	}
	simP.Step(read15)
	st := simP.Stats()
	if got := st.Disk.ReadSeeks; got != 3 {
		t.Errorf("read seeks with prefetch = %d, want 3", got)
	}
	if st.PrefetchHits != 2 {
		t.Errorf("prefetch hits = %d, want 2 (LBA 3 and 4)", st.PrefetchHits)
	}
}

func TestSelectiveCacheEliminatesRereadSeeks(t *testing.T) {
	c := DefaultCacheConfig()
	cfg := Config{LogStructured: true, FrontierStart: 1000, Cache: &c}
	sim := mustSim(t, cfg)
	// Fragment LBA 10..20 badly, then read it twice.
	sim.Step(wr(10, 10))
	for i := int64(10); i < 20; i += 2 {
		sim.Step(wr(i, 1))
	}
	sim.Step(rd(10, 10))
	afterFirst := sim.Stats()
	if afterFirst.FragmentedReads != 1 || afterFirst.CacheHits != 0 {
		t.Fatalf("first read stats = %+v", afterFirst)
	}
	sim.Step(rd(10, 10))
	st := sim.Stats()
	extra := st.Disk.ReadSeeks - afterFirst.Disk.ReadSeeks
	if extra != 0 {
		t.Errorf("re-read caused %d seeks, want 0 (all fragments cached)", extra)
	}
	if st.CacheHits == 0 {
		t.Error("expected cache hits on re-read")
	}
	// A write into the range invalidates; the next read goes to disk.
	sim.Step(wr(12, 2))
	if sim.Stats().CacheInvalidations == 0 {
		t.Error("write should invalidate overlapping entries")
	}
	pre := sim.Stats().Disk.ReadSeeks
	sim.Step(rd(10, 10))
	if sim.Stats().Disk.ReadSeeks == pre {
		t.Error("read after invalidation should touch disk")
	}
}

func TestUnfragmentedReadsBypassMechanisms(t *testing.T) {
	c, p := DefaultCacheConfig(), DefaultPrefetchConfig()
	cfg := Config{LogStructured: true, FrontierStart: 1000, Cache: &c, Prefetch: &p}
	sim := mustSim(t, cfg)
	sim.Step(wr(0, 100))
	sim.Step(rd(0, 100)) // single fragment
	sim.Step(rd(0, 100))
	st := sim.Stats()
	if st.FragmentedReads != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.PrefetchHits != 0 {
		t.Errorf("mechanisms touched by unfragmented reads: %+v", st)
	}
}

func TestReadObserverAndStatsFields(t *testing.T) {
	cfg := Config{LogStructured: true, FrontierStart: 1000}
	sim := mustSim(t, cfg)
	var events []ReadEvent
	sim.AddReadObserver(func(ev ReadEvent) { events = append(events, ev) })
	sim.Step(wr(0, 10))
	sim.Step(wr(2, 2))
	sim.Step(rd(0, 10))
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].OpIndex != 2 || len(events[0].Fragments) != 3 {
		t.Errorf("event = %+v", events[0])
	}
	st := sim.Stats()
	if st.TotalFragments != 3 || st.MaxFragments != 3 || st.FragmentedReads != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Empty records are ignored.
	sim.Step(trace.Record{Kind: disk.Read})
	if sim.Stats().Reads != 1 {
		t.Error("empty record should be skipped")
	}
}

func TestCompareSAF(t *testing.T) {
	// Sequential-read-after-random-write: the paper's log-sensitive toy.
	var recs []trace.Record
	recs = append(recs, wr(0, 1000))
	for i := int64(0); i < 1000; i += 10 {
		recs = append(recs, wr(i, 1))
	}
	for rep := 0; rep < 5; rep++ {
		recs = append(recs, rd(0, 1000))
	}
	cmp, err := ComparePaper(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Variants) != 4 {
		t.Fatalf("variants = %d", len(cmp.Variants))
	}
	ls, ok := cmp.VariantByName("LS")
	if !ok {
		t.Fatal("LS variant missing")
	}
	if ls.Total <= 1 {
		t.Errorf("LS SAF = %v, want > 1 for scan-after-random-write", ls.Total)
	}
	for _, name := range []string{"LS+defrag", "LS+prefetch", "LS+cache"} {
		v, ok := cmp.VariantByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if v.Total >= ls.Total {
			t.Errorf("%s SAF %v not better than LS %v", name, v.Total, ls.Total)
		}
	}
	if _, ok := cmp.VariantByName("nope"); ok {
		t.Error("VariantByName(nope) should fail")
	}
}

func TestCompareLogFriendly(t *testing.T) {
	// Temporal-locality workload: random writes then reads in the SAME
	// temporal order → LS turns both into sequential access, SAF < 1.
	var recs []trace.Record
	lbas := []int64{9000, 100, 5000, 42, 7000, 1000, 3000, 600}
	for _, l := range lbas {
		recs = append(recs, wr(l, 16))
	}
	for rep := 0; rep < 3; rep++ {
		for _, l := range lbas {
			recs = append(recs, rd(l, 16))
		}
	}
	cmp, err := Compare(recs, Config{LogStructured: true})
	if err != nil {
		t.Fatal(err)
	}
	if saf := cmp.Variants[0].Total; saf >= 1 {
		t.Errorf("log-friendly workload SAF = %v, want < 1", saf)
	}
}

func TestDefragGates(t *testing.T) {
	d := NewDefragmenter(DefragConfig{MinFragments: 3, MinAccesses: 2})
	e := geom.Ext(0, 10)
	if d.ShouldDefrag(e, 2) {
		t.Error("below MinFragments must not defrag")
	}
	if d.ShouldDefrag(e, 5) {
		t.Error("first access must not defrag with MinAccesses=2")
	}
	if !d.ShouldDefrag(e, 5) {
		t.Error("second access should defrag")
	}
	// Counter reset after write-back.
	if d.ShouldDefrag(e, 5) {
		t.Error("count must reset after defrag")
	}
	if d.Suppressed() != 3 {
		t.Errorf("suppressed = %d, want 3", d.Suppressed())
	}
	// Clamping.
	d2 := NewDefragmenter(DefragConfig{})
	if !d2.ShouldDefrag(e, 2) {
		t.Error("clamped defaults should defrag a 2-fragment read immediately")
	}
}

func TestPrefetcherBufferEviction(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{LookBehindSectors: 0, LookAheadSectors: 0, BufferBytes: 2 * 512})
	p.Fill(geom.Ext(0, 1))
	p.Fill(geom.Ext(100, 1))
	p.Fill(geom.Ext(200, 1)) // evicts [0,1)
	if p.Covers(geom.Ext(0, 1)) {
		t.Error("oldest window should be evicted")
	}
	if !p.Covers(geom.Ext(100, 1)) || !p.Covers(geom.Ext(200, 1)) {
		t.Error("newer windows must remain")
	}
	if p.BufferedBytes() != 2*512 {
		t.Errorf("BufferedBytes = %d", p.BufferedBytes())
	}
	if p.Hits() != 2 || p.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", p.Hits(), p.Misses())
	}
	p.Fill(geom.Extent{}) // no-op
}

func TestPrefetcherClampsAtZero(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{LookBehindSectors: 100, LookAheadSectors: 0, BufferBytes: 1 << 20})
	p.Fill(geom.Ext(5, 1)) // window would start at -95; clamped to 0
	if !p.Covers(geom.Ext(0, 6)) {
		t.Error("window should cover [0,6)")
	}
}

func TestSelectiveCacheExactKeySemantics(t *testing.T) {
	s := NewSelectiveCache(CacheConfig{CapacityBytes: 1 << 20})
	s.Insert(geom.Ext(10, 10))
	if !s.Has(geom.Ext(10, 10)) {
		t.Error("exact key should hit")
	}
	if s.Has(geom.Ext(10, 5)) {
		t.Error("sub-range is a (false) miss by design")
	}
	if s.Entries() != 1 || s.UsedBytes() != 10*512 {
		t.Errorf("entries=%d used=%d", s.Entries(), s.UsedBytes())
	}
	// Invalidation of a non-overlapping write is a fast no-op.
	if got := s.Invalidate(geom.Ext(1000, 5)); got != 0 {
		t.Errorf("non-overlapping invalidate dropped %d", got)
	}
	if got := s.Invalidate(geom.Ext(15, 1)); got != 1 {
		t.Errorf("overlapping invalidate dropped %d, want 1", got)
	}
	if s.Has(geom.Ext(10, 10)) {
		t.Error("invalidated entry should miss")
	}
	s.Insert(geom.Extent{}) // no-op
	if s.Entries() != 0 {
		t.Error("empty insert should be ignored")
	}
}

func TestSelectiveCacheCapacityEviction(t *testing.T) {
	s := NewSelectiveCache(CacheConfig{CapacityBytes: 3 * 512})
	s.Insert(geom.Ext(0, 1))
	s.Insert(geom.Ext(10, 1))
	s.Insert(geom.Ext(20, 1))
	s.Insert(geom.Ext(30, 1)) // evicts [0,1)
	if s.Has(geom.Ext(0, 1)) {
		t.Error("coldest entry should be evicted")
	}
	if !s.Has(geom.Ext(30, 1)) {
		t.Error("newest entry must be present")
	}
}
