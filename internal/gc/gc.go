// Package gc implements a finite-disk log-structured translation layer
// with segment cleaning — the overhead the paper's infinite-disk model
// deliberately excludes ("for archival workloads cleaning may never be
// needed", §II) and the literature it cites studies extensively.
//
// The log region is divided into fixed-size segments. Writes fill the
// active segment; when free segments run low, a cleaner picks a victim —
// greedily (least live data) or by LFS cost-benefit (age × free share) —
// relocates its live extents to the log head, and recycles it. The
// relocation I/O is surfaced through stl.Maintainer so the simulator's
// disk model charges its seeks, and stl.Amplifier reports the resulting
// write amplification, letting experiments put numbers on the paper's
// claim that a full-map log-structured STL trades cleaning for read
// seeks while the media-cache design does the opposite.
package gc

import (
	"fmt"

	"smrseek/internal/disk"
	"smrseek/internal/extmap"
	"smrseek/internal/geom"
	"smrseek/internal/stl"
)

// Policy selects the victim-segment heuristic.
type Policy int

const (
	// Greedy picks the segment with the least live data.
	Greedy Policy = iota
	// CostBenefit picks by the LFS benefit/cost ratio
	// age * (1-u) / (1+u), preferring old, mostly-dead segments.
	CostBenefit
)

// String names the policy.
func (p Policy) String() string {
	if p == CostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// Config sizes the segmented log.
type Config struct {
	// DeviceSectors is the LBA space; the log region begins right above
	// it, as in the paper's model.
	DeviceSectors int64
	// LogSectors is the log region capacity, a multiple of
	// SegmentSectors. The ratio LogSectors / (written volume) is the
	// over-provisioning that drives cleaning cost.
	LogSectors int64
	// SegmentSectors is the cleaning unit (an LFS segment / SMR zone).
	SegmentSectors int64
	// Policy selects the victim heuristic.
	Policy Policy
	// FreeLowWater triggers cleaning when free segments drop below it;
	// cleaning proceeds until FreeHighWater are free. Defaults 2 and 4.
	FreeLowWater  int
	FreeHighWater int
}

// Layer is the finite log-structured translation layer.
type Layer struct {
	cfg      Config
	m        *extmap.Map
	logStart geom.Sector

	segs []segment
	free []int
	cur  int   // active segment index
	off  int64 // fill offset inside the active segment

	pending []stl.MaintenanceOp

	hostSectors  int64
	extraSectors int64
	cleanings    int64
	now          int64 // logical clock: one tick per host write
}

type segment struct {
	live      int64
	lastWrite int64
	full      bool
}

// New builds the layer; LogSectors must tile into segments and leave at
// least FreeHighWater+1 segments.
func New(cfg Config) (*Layer, error) {
	if cfg.SegmentSectors <= 0 {
		return nil, fmt.Errorf("gc: non-positive segment size")
	}
	if cfg.DeviceSectors < 0 {
		return nil, fmt.Errorf("gc: negative device size")
	}
	if cfg.LogSectors <= 0 || cfg.LogSectors%cfg.SegmentSectors != 0 {
		return nil, fmt.Errorf("gc: log size %d not a multiple of segment size %d", cfg.LogSectors, cfg.SegmentSectors)
	}
	if cfg.FreeLowWater <= 0 {
		cfg.FreeLowWater = 2
	}
	if cfg.FreeHighWater <= cfg.FreeLowWater {
		cfg.FreeHighWater = cfg.FreeLowWater + 2
	}
	n := int(cfg.LogSectors / cfg.SegmentSectors)
	if n < cfg.FreeHighWater+1 {
		return nil, fmt.Errorf("gc: %d segments too few for high watermark %d", n, cfg.FreeHighWater)
	}
	l := &Layer{
		cfg:      cfg,
		m:        extmap.New(),
		logStart: cfg.DeviceSectors,
		segs:     make([]segment, n),
	}
	for i := 1; i < n; i++ {
		l.free = append(l.free, i)
	}
	l.cur = 0
	return l, nil
}

// Name implements stl.Layer.
func (l *Layer) Name() string { return "SegLS(" + l.cfg.Policy.String() + ")" }

// Resolve implements stl.Layer.
func (l *Layer) Resolve(lba geom.Extent) []stl.Fragment {
	if lba.Empty() {
		return nil
	}
	return l.ResolveAppend(nil, lba)
}

// ResolveAppend implements stl.AppendResolver.
func (l *Layer) ResolveAppend(dst []stl.Fragment, lba geom.Extent) []stl.Fragment {
	l.m.LookupFunc(lba, func(r extmap.Resolved) bool {
		dst = append(dst, stl.Fragment{Lba: r.Lba, Pba: r.Pba})
		return true
	})
	return dst
}

// Write implements stl.Layer: the extent is placed at the log head
// (splitting across segments as needed); cleaning runs afterwards if
// free segments fell below the low watermark.
func (l *Layer) Write(lba geom.Extent) []stl.Fragment {
	if lba.Empty() {
		return nil
	}
	l.now++
	l.hostSectors += lba.Count
	frags := l.place(lba)
	if len(l.free) < l.cfg.FreeLowWater {
		l.clean()
	}
	return frags
}

func (l *Layer) segBase(i int) geom.Sector {
	return l.logStart + int64(i)*l.cfg.SegmentSectors
}

func (l *Layer) segOf(pba geom.Sector) int {
	return int((pba - l.logStart) / l.cfg.SegmentSectors)
}

// place appends the extent at the log head and maintains live counts.
// It never triggers cleaning itself, so the cleaner can call it safely.
func (l *Layer) place(lba geom.Extent) []stl.Fragment {
	var frags []stl.Fragment
	rest := lba
	for !rest.Empty() {
		room := l.cfg.SegmentSectors - l.off
		if room == 0 {
			l.segs[l.cur].full = true
			next, ok := l.popFree()
			if !ok {
				// The watermarks guarantee space; hitting this means the
				// log is undersized for the workload.
				panic("gc: log out of free segments — increase LogSectors or watermarks")
			}
			l.cur, l.off = next, 0
			room = l.cfg.SegmentSectors
		}
		n := rest.Count
		if n > room {
			n = room
		}
		piece := geom.Ext(rest.Start, n)
		pba := l.segBase(l.cur) + l.off
		for _, d := range l.m.Insert(piece, pba) {
			// Displaced pieces always live in the log region (identity
			// data is never mapped).
			l.segs[l.segOf(d.Pba)].live -= d.Lba.Count
		}
		seg := &l.segs[l.cur]
		seg.live += n
		seg.lastWrite = l.now
		l.off += n
		frags = append(frags, stl.Fragment{Lba: piece, Pba: pba})
		rest = geom.Span(piece.End(), rest.End())
	}
	return frags
}

func (l *Layer) popFree() (int, bool) {
	if len(l.free) == 0 {
		return 0, false
	}
	i := l.free[0]
	l.free = l.free[1:]
	l.segs[i].full = false
	return i, true
}

// clean relocates victims until the high watermark is restored.
func (l *Layer) clean() {
	for len(l.free) < l.cfg.FreeHighWater {
		victim, ok := l.pickVictim()
		if !ok {
			return // nothing cleanable (all segments live or active)
		}
		l.cleanSegment(victim)
	}
}

// pickVictim returns the best full segment under the policy.
func (l *Layer) pickVictim() (int, bool) {
	best := -1
	var bestScore float64
	for i := range l.segs {
		s := &l.segs[i]
		if i == l.cur || !s.full {
			continue
		}
		if s.live >= l.cfg.SegmentSectors {
			// Fully live: cleaning it frees nothing and would churn the
			// log forever when every segment is live (log undersized).
			continue
		}
		var score float64
		u := float64(s.live) / float64(l.cfg.SegmentSectors)
		switch l.cfg.Policy {
		case Greedy:
			score = 1 - u // fewer live sectors = better
		case CostBenefit:
			age := float64(l.now - s.lastWrite)
			score = age * (1 - u) / (1 + u)
		}
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best, best != -1
}

// cleanSegment relocates a victim's live extents and recycles it.
func (l *Layer) cleanSegment(victim int) {
	vext := geom.Ext(l.segBase(victim), l.cfg.SegmentSectors)
	// Collect the victim's live mappings (full map walk; cleans are rare
	// relative to host operations).
	var live []extmap.Mapping
	l.m.Walk(func(m extmap.Mapping) bool {
		if m.Pba >= vext.Start && m.Pba < vext.End() {
			live = append(live, m)
		}
		return true
	})
	for _, m := range live {
		// Read the live extent from the victim...
		l.pending = append(l.pending, stl.MaintenanceOp{Kind: disk.Read, Extent: m.PhysExtent()})
		// ...and rewrite it at the log head.
		for _, f := range l.place(m.Lba) {
			l.pending = append(l.pending, stl.MaintenanceOp{Kind: disk.Write, Extent: f.PhysExtent()})
		}
		l.extraSectors += m.Lba.Count
	}
	if l.segs[victim].live != 0 {
		panic(fmt.Sprintf("gc: victim %d has %d live sectors after cleaning", victim, l.segs[victim].live))
	}
	l.free = append(l.free, victim)
	l.cleanings++
}

// PendingMaintenance implements stl.Maintainer.
func (l *Layer) PendingMaintenance() []stl.MaintenanceOp {
	out := l.pending
	l.pending = nil
	return out
}

// HostSectors implements stl.Amplifier.
func (l *Layer) HostSectors() int64 { return l.hostSectors }

// ExtraSectors implements stl.Amplifier.
func (l *Layer) ExtraSectors() int64 { return l.extraSectors }

// Cleanings returns how many segments have been cleaned.
func (l *Layer) Cleanings() int64 { return l.cleanings }

// FreeSegments returns the current free-list length.
func (l *Layer) FreeSegments() int { return len(l.free) }

// Fragments returns the dynamic fragmentation of a read of lba.
func (l *Layer) Fragments(lba geom.Extent) int { return l.m.Fragments(lba) }

var (
	_ stl.Layer      = (*Layer)(nil)
	_ stl.Maintainer = (*Layer)(nil)
	_ stl.Amplifier  = (*Layer)(nil)
)
