package gc

import (
	"testing"

	"smrseek/internal/geom"
)

func benchLayer(b *testing.B, policy Policy) {
	b.Helper()
	l, err := New(Config{
		DeviceSectors:  1 << 20,
		LogSectors:     256 * 2048,
		SegmentSectors: 2048,
		Policy:         policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	seed := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		l.Write(geom.Ext(int64(seed%(400*1024)), 16))
		l.PendingMaintenance()
	}
	b.ReportMetric(float64(l.Cleanings()), "cleanings")
}

func BenchmarkWriteGreedy(b *testing.B)      { benchLayer(b, Greedy) }
func BenchmarkWriteCostBenefit(b *testing.B) { benchLayer(b, CostBenefit) }

func BenchmarkResolve(b *testing.B) {
	l, err := New(Config{DeviceSectors: 1 << 20, LogSectors: 256 * 2048, SegmentSectors: 2048})
	if err != nil {
		b.Fatal(err)
	}
	seed := uint64(2)
	for i := 0; i < 20000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		l.Write(geom.Ext(int64(seed%(400*1024)), 16))
		l.PendingMaintenance()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		l.Resolve(geom.Ext(int64(seed%(400*1024)), 256))
	}
}
