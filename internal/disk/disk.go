// Package disk models the paper's infinite-disk head position and seek
// accounting (§II): a seek occurs iff an I/O operation starts at a sector
// other than the one immediately following the previous operation, and it
// is a read seek or a write seek according to the *second* of the two
// operations. The model tracks no geometry; an optional TimeModel
// approximates seek cost as a function of distance for time-weighted
// reporting (§III).
package disk

import (
	"fmt"

	"smrseek/internal/geom"
)

// OpKind distinguishes reads from writes.
type OpKind uint8

const (
	// Read is a read operation.
	Read OpKind = iota
	// Write is a write operation.
	Write
)

// String returns "read" or "write".
func (k OpKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Access describes the outcome of positioning the head for one I/O.
type Access struct {
	Kind     OpKind
	Extent   geom.Extent
	Seeked   bool
	Distance int64 // signed sectors from previous end to this start (0 when sequential)
	// Faulted marks an attempt the fault checker rejected: the head
	// moved and the seek was charged, but no data transferred.
	Faulted bool
}

// Counters accumulates the seek statistics the paper reports.
type Counters struct {
	ReadOps    int64
	WriteOps   int64
	ReadSeeks  int64
	WriteSeeks int64

	// ReadSectors and WriteSectors count sectors actually transferred;
	// faulted attempts contribute to ops and seeks but not to these, so
	// a retried access counts its sectors exactly once — on the attempt
	// that succeeds.
	ReadSectors  int64
	WriteSectors int64

	// FaultedReads and FaultedWrites count attempts the fault checker
	// rejected.
	FaultedReads  int64
	FaultedWrites int64

	// LongSeeks counts seeks whose |distance| exceeds LongSeekSectors
	// (Figure 3 plots only these).
	LongReadSeeks  int64
	LongWriteSeeks int64
}

// LongSeekBytes is the paper's long-seek threshold: Figure 3 ignores
// seeks shorter than +/- 500 KB.
const LongSeekBytes = 500 * 1000

// LongSeekSectors is LongSeekBytes expressed in sectors.
const LongSeekSectors = LongSeekBytes / geom.SectorSize

// TotalOps returns the number of operations observed.
func (c Counters) TotalOps() int64 { return c.ReadOps + c.WriteOps }

// TotalSeeks returns read + write seeks.
func (c Counters) TotalSeeks() int64 { return c.ReadSeeks + c.WriteSeeks }

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.ReadOps += other.ReadOps
	c.WriteOps += other.WriteOps
	c.ReadSeeks += other.ReadSeeks
	c.WriteSeeks += other.WriteSeeks
	c.ReadSectors += other.ReadSectors
	c.WriteSectors += other.WriteSectors
	c.FaultedReads += other.FaultedReads
	c.FaultedWrites += other.FaultedWrites
	c.LongReadSeeks += other.LongReadSeeks
	c.LongWriteSeeks += other.LongWriteSeeks
}

// Observer receives every head access; analyses (distance CDFs, windowed
// series) hook in here without the Disk knowing about them.
type Observer interface {
	ObserveAccess(Access)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Access)

// ObserveAccess calls f(a).
func (f ObserverFunc) ObserveAccess(a Access) { f(a) }

// FaultChecker decides whether one I/O attempt fails. A nil checker (the
// default) never fails; internal/fault provides a deterministic, seeded
// implementation.
type FaultChecker interface {
	// CheckAccess is consulted once per attempt; a non-nil return marks
	// the attempt faulted. Each call may decide independently, so a
	// retry of a transient fault can succeed.
	CheckAccess(kind OpKind, ext geom.Extent) error
}

// Device is the pluggable geometry interface internal/core drives. The
// paper's infinite model (*Disk) and the finite banded model
// (internal/band.Device) both implement it; the simulator composes
// against this interface so every mechanism runs unchanged on either.
type Device interface {
	// TryDo performs one I/O attempt at the physical extent, charging
	// seek accounting, and returns the access outcome plus the fault
	// checker's verdict (nil without a checker).
	TryDo(kind OpKind, ext geom.Extent) (Access, error)
	// Counters returns the accumulated seek statistics.
	Counters() Counters
	// Position returns the sector following the previous I/O — the only
	// position from which the next I/O is seek-free.
	Position() geom.Sector
	// AddObserver registers an observer for every subsequent access.
	AddObserver(o Observer)
	// SetFaultChecker installs a fault checker consulted on every
	// attempt; nil restores the never-failing default.
	SetFaultChecker(fc FaultChecker)
}

// Disk is the head-position model. The zero value is not ready; use New.
type Disk struct {
	pos       geom.Sector // sector following the last transferred sector
	first     bool        // true until the first access
	counters  Counters
	observers []Observer
	faults    FaultChecker
}

// New returns a disk whose head position is undefined until the first
// access; by the paper's definition the first operation of a trace does
// not count as a seek (there is no previous operation).
func New() *Disk {
	return &Disk{first: true}
}

var _ Device = (*Disk)(nil)

// AddObserver registers an observer for every subsequent access.
func (d *Disk) AddObserver(o Observer) { d.observers = append(d.observers, o) }

// SetFaultChecker installs a fault checker consulted on every access
// attempt; pass nil to restore the never-failing default.
func (d *Disk) SetFaultChecker(fc FaultChecker) { d.faults = fc }

// Counters returns the accumulated seek statistics.
func (d *Disk) Counters() Counters { return d.counters }

// Position returns the sector that would follow the previous I/O — the
// only position from which the next I/O is seek-free.
func (d *Disk) Position() geom.Sector { return d.pos }

// Do performs one I/O of the given kind at the physical extent, updating
// seek accounting, and reports the access outcome. Any fault is folded
// into the Access (Faulted flag) and otherwise ignored; error-aware
// callers use TryDo.
func (d *Disk) Do(kind OpKind, ext geom.Extent) Access {
	a, _ := d.TryDo(kind, ext)
	return a
}

// TryDo performs one I/O attempt of the given kind at the physical
// extent. The head repositions and the seek is charged whether or not
// the attempt faults — the drive did the mechanical work — but a faulted
// attempt transfers no sectors. The returned error is the fault
// checker's verdict (nil without a checker), letting callers retry: a
// retry is simply another attempt at the same extent.
func (d *Disk) TryDo(kind OpKind, ext geom.Extent) (Access, error) {
	if ext.Empty() {
		return Access{Kind: kind, Extent: ext}, nil
	}
	var err error
	if d.faults != nil {
		err = d.faults.CheckAccess(kind, ext)
	}
	a := Access{Kind: kind, Extent: ext, Faulted: err != nil}
	if d.first {
		d.first = false
	} else if ext.Start != d.pos {
		a.Seeked = true
		a.Distance = ext.Start - d.pos
	}
	d.pos = ext.End()

	switch kind {
	case Read:
		d.counters.ReadOps++
		if a.Faulted {
			d.counters.FaultedReads++
		} else {
			d.counters.ReadSectors += ext.Count
		}
		if a.Seeked {
			d.counters.ReadSeeks++
			if abs64(a.Distance) > LongSeekSectors {
				d.counters.LongReadSeeks++
			}
		}
	case Write:
		d.counters.WriteOps++
		if a.Faulted {
			d.counters.FaultedWrites++
		} else {
			d.counters.WriteSectors += ext.Count
		}
		if a.Seeked {
			d.counters.WriteSeeks++
			if abs64(a.Distance) > LongSeekSectors {
				d.counters.LongWriteSeeks++
			}
		}
	}
	for _, o := range d.observers {
		o.ObserveAccess(a)
	}
	return a, err
}

// Read performs a read access.
func (d *Disk) Read(ext geom.Extent) Access { return d.Do(Read, ext) }

// Write performs a write access.
func (d *Disk) Write(ext geom.Extent) Access { return d.Do(Write, ext) }

// String summarizes the counters.
func (c Counters) String() string {
	return fmt.Sprintf("reads=%d (seeks=%d) writes=%d (seeks=%d)",
		c.ReadOps, c.ReadSeeks, c.WriteOps, c.WriteSeeks)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
