package server

// Protocol conformance: the SMRD2 rewrite must be invisible at the
// payload level. Every op, driven through a v1 client, a v2 client at
// window 1, and a v2 client at window 64 against the same server build,
// must produce byte-identical response bodies — and the volume behind
// the wire must end bit-identical to a direct in-process run of the
// same script. The journal directory is recreated at the SAME path for
// every variant so path-bearing bodies (the verify audit) compare
// byte-for-byte too.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smrseek/internal/core"
	"smrseek/internal/disk"
	"smrseek/internal/geom"
	"smrseek/internal/trace"
	"smrseek/internal/volume"
	"smrseek/internal/workload"
)

// confOps is the scripted op sequence following the trace replay, in
// order. Mutating ops (snapshot) come after the read-only captures so
// every variant observes the same journal state; verify runs last, over
// the checkpointed directory.
var confOps = []struct {
	name string
	req  request
}{
	{"write", request{Op: OpWrite, Volume: "cv", Extent: geom.Ext(1<<19, 16)}},
	{"read", request{Op: OpRead, Volume: "cv", Extent: geom.Ext(1<<19, 16)}},
	{"stat", request{Op: OpStat, Volume: "cv"}},
	{"proof", request{Op: OpProof, Volume: "cv", Seq: 1}},
	{"ship", request{Op: OpShip, Volume: "cv", Gen: 0, Off: 0}},
	{"tail", request{Op: OpTail, Volume: "cv", Gen: 0, Off: 0}},
	{"ack", request{Op: OpAck, Volume: "cv", Gen: 1, Off: 0}},
	{"role", request{Op: OpRole}},
	{"promote", request{Op: OpPromote}},
	{"snapshot", request{Op: OpSnapshot, Volume: "cv"}},
	{"verify", request{Op: OpVerify, Volume: "cv"}},
}

func confVolume(dir string, frontier geom.Sector) volume.Config {
	return volume.Config{
		Name:       "cv",
		Sim:        core.Config{LogStructured: true, FrontierStart: frontier},
		JournalDir: dir,
		SealEvery:  8,
	}
}

func confTrace(t *testing.T) []trace.Record {
	t.Helper()
	p, err := workload.ByName("w91")
	if err != nil {
		t.Fatal(err)
	}
	recs := p.Generate(0.01)
	if len(recs) > 300 {
		recs = recs[:300]
	}
	if len(recs) == 0 {
		t.Fatal("empty conformance trace")
	}
	return recs
}

// runConfVariant executes the script through one protocol variant and
// captures every response body plus the final wire Stats.
func runConfVariant(t *testing.T, dir string, recs []trace.Record, frontier geom.Sector, version uint8, window int) (map[string][]byte, core.Stats) {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	_, _, addr := newTestServer(t, Options{}, confVolume(dir, frontier))

	ac, err := DialAsyncContext(context.Background(), addr, version, window)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if ac.Version() != version {
		t.Fatalf("negotiated version %d, want %d", ac.Version(), version)
	}
	if version >= Version2 && ac.Window() != window {
		t.Fatalf("negotiated window %d, want %d", ac.Window(), window)
	}

	// The replay keeps the whole negotiated window in flight; the ops
	// after it are strictly sequential.
	n, err := ac.Replay("cv", trace.NewSliceReader(recs))
	if err != nil {
		t.Fatalf("pipelined replay (v%d w%d): %v", version, window, err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("replayed %d of %d records", n, len(recs))
	}

	bodies := make(map[string][]byte, len(confOps))
	for _, op := range confOps {
		body, err := ac.roundTrip(op.req)
		if err != nil {
			t.Fatalf("%s (v%d w%d): %v", op.name, version, window, err)
		}
		bodies[op.name] = append([]byte(nil), body...)
	}
	var st core.Stats
	if err := json.Unmarshal(bodies["stat"], &st); err != nil {
		t.Fatalf("stat decode: %v", err)
	}
	return bodies, st
}

// runConfDirect executes the same script straight against the volume
// actor — no server, no wire — and returns the Stats at the point the
// script's stat op ran.
func runConfDirect(t *testing.T, dir string, recs []trace.Record, frontier geom.Sector) core.Stats {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	mgr, err := volume.OpenAll(confVolume(dir, frontier))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	v, _ := mgr.Get("cv")
	done := make(chan volume.Result, 1)
	step := func(req volume.Request) volume.Result {
		t.Helper()
		if err := v.TryDo(req, done); err != nil {
			t.Fatal(err)
		}
		res := <-done
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res
	}
	for _, rec := range recs {
		kind := volume.OpWrite
		if rec.Kind == disk.Read {
			kind = volume.OpRead
		}
		step(volume.Request{Kind: kind, Extent: rec.Extent})
	}
	step(volume.Request{Kind: volume.OpWrite, Extent: geom.Ext(1<<19, 16)})
	step(volume.Request{Kind: volume.OpRead, Extent: geom.Ext(1<<19, 16)})
	st := *step(volume.Request{Kind: volume.OpStat}).Stats
	st.Config = core.Config{}
	return st
}

func TestProtocolConformance(t *testing.T) {
	recs := confTrace(t)
	frontier := core.FrontierFor(recs)
	dir := filepath.Join(t.TempDir(), "conf")

	want := runConfDirect(t, dir, recs, frontier)

	variants := []struct {
		name    string
		version uint8
		window  int
	}{
		{"v1", Version, 1},
		{"v2-w1", Version2, 1},
		{"v2-w64", Version2, 64},
	}
	bodies := make(map[string]map[string][]byte, len(variants))
	for _, vr := range variants {
		b, st := runConfVariant(t, dir, recs, frontier, vr.version, vr.window)
		bodies[vr.name] = b
		if !reflect.DeepEqual(st, want) {
			t.Errorf("%s: wire stats diverged from direct run:\n got %+v\nwant %+v", vr.name, st, want)
		}
	}

	// Byte-identical bodies across every variant, op by op.
	ref := bodies[variants[0].name]
	for _, vr := range variants[1:] {
		for _, op := range confOps {
			if !bytes.Equal(bodies[vr.name][op.name], ref[op.name]) {
				t.Errorf("%s: %s body diverged from %s:\n got %q\nwant %q",
					vr.name, op.name, variants[0].name, bodies[vr.name][op.name], ref[op.name])
			}
		}
	}
}
